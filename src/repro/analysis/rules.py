"""The project rule catalog: twelve checks distilled from real bugs.

Every rule here encodes an invariant this repo has already paid for once:

- REP001 — the Trainer/chaos determinism audits (unseeded RNG breaks
  byte-identical campaign replays);
- REP002 — the sim-clock discipline that keeps scrapes, checkpoints and
  model metadata reproducible (wall-clock reads leaked into model-store
  and alarm timestamps);
- REP003 — the PR 4 metrics race (``self._value += x`` on shared leaves,
  lost increments under the parallel executor);
- REP004 — the ``EmbeddingRowCache`` aliasing bug (a cached row handed
  out writable corrupted every later prediction);
- REP005 — ``lock.acquire()`` without ``with`` leaks the lock on any
  exception between acquire and release;
- REP006 — ``==`` on floats (byte-identical guarantees compare exact
  values only where the code path is exactly reproducible);
- REP007 — swallowed exceptions in the resilience ladder (a silent
  ``except Exception: pass`` hides the faults chaos testing injects);
- REP008 — mutation of read-only TSDB snapshot shards (snapshot isolation
  is the parallel executor's whole correctness story);
- REP009 — the SequenceEncoder boundary (modules outside ``repro.nn``
  reaching for GRU/LSTM/AdditiveAttention directly bypass the encoder
  registry, its compile dispatch, and its serialization schema);
- REP010 — the serve boundary (``repro.serve._internal`` holds the
  admission/batcher/warm-pool machinery; outside imports would freeze a
  surface that is deliberately free to change);
- REP011 — the process-management boundary (``os.kill``/``signal``
  handlers/raw ``multiprocessing.Process`` wiring belong only to
  ``serve._internal.supervisor``, whose epoch bookkeeping and restart
  guarantees they would otherwise bypass);
- REP012 — the PR 9 batch-inference regression (per-timestep
  ``np.hstack`` and bare ``@`` matmuls inside the fused GRU/LSTM
  timestep loops allocated fresh arrays every step, capping batch-256
  speedup at 1.1×; sequence-runner hot loops must write into
  preallocated workspace buffers via ``out=``).

Rules are deliberately syntactic: no type inference, no cross-file
analysis. Where syntax alone over-approximates, the escape hatches are an
inline ``# repro: noqa[REP00x]`` (checked for staleness) or a baseline
entry with a written justification.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .engine import FileContext, Rule, RuleRegistry

__all__ = ["DEFAULT_REGISTRY", "default_registry", "ALL_RULES", "RULESET_VERSION"]

#: Monotonic version of the full rule catalog (per-file REP001-REP012
#: plus the cross-file rules in :mod:`repro.analysis.program`). The
#: incremental cache embeds it in every entry, so bumping it on any rule
#: semantics change invalidates stale cached scans wholesale.
RULESET_VERSION = 2

#: Packages under src/repro/ that run on the simulated campaign clock.
_SIM_CLOCK_PACKAGES = frozenset({"core", "workflow", "parallel", "resilience"})

#: numpy legacy global-state API — any call through these mutates or reads
#: hidden process-wide RNG state.
_NP_GLOBAL_STATE_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull",
    "zipf",
})

_WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``
    (empty when the expression is not a plain dotted name)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _root_name(node: ast.expr) -> str | None:
    """The base Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class UnseededRNGRule(Rule):
    """REP001: every RNG must be constructed from an explicit seed."""

    id = "REP001"
    title = "unseeded RNG construction"
    node_types = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[tuple[int, str]]:
        chain = _attr_chain(node.func)
        if not chain:
            return
        # np.random.default_rng() / numpy.random.default_rng() / default_rng()
        if chain[-1] == "default_rng" and (
            len(chain) == 1 or chain[:-1] in (["np", "random"], ["numpy", "random"])
        ):
            if not node.args and not node.keywords:
                yield (
                    node.lineno,
                    "np.random.default_rng() without a seed — pass an explicit "
                    "seed (or an already-seeded Generator) so runs replay",
                )
            elif node.args and isinstance(node.args[0], ast.Constant) and (
                node.args[0].value is None
            ):
                yield (node.lineno, "np.random.default_rng(None) is unseeded")
            return
        # np.random.RandomState() with no seed
        if chain[-1] == "RandomState" and chain[:-1] in (["np", "random"], ["numpy", "random"]):
            if not node.args and not node.keywords:
                yield (node.lineno, "np.random.RandomState() without a seed")
            return
        # legacy module-level API: np.random.rand / shuffle / seed / ...
        if (
            len(chain) == 3
            and chain[0] in ("np", "numpy")
            and chain[1] == "random"
            and chain[2] in _NP_GLOBAL_STATE_FNS
        ):
            yield (
                node.lineno,
                f"np.random.{chain[2]}() uses hidden global RNG state — "
                "construct a seeded np.random.default_rng(seed) instead",
            )


class WallClockRule(Rule):
    """REP002: sim-clock packages must not read the wall clock."""

    id = "REP002"
    title = "wall-clock read in sim-clock code"
    node_types = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.package in _SIM_CLOCK_PACKAGES
            and not ctx.is_test
            and not ctx.is_benchmark
        )

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[tuple[int, str]]:
        chain = _attr_chain(node.func)
        if len(chain) != 2:
            return
        module, attr = chain
        if attr in _WALL_CLOCK_ATTRS.get(module, ()):
            yield (
                node.lineno,
                f"{module}.{attr}() reads the wall clock in sim-clock code — "
                "plumb the simulated clock (or an obs timing shim such as "
                "Histogram.time()) instead",
            )


class UnlockedSharedStateRule(Rule):
    """REP003: ``+=`` on shared (module/class-level) state needs a lock."""

    id = "REP003"
    title = "unlocked augmented assignment on shared state"
    node_types = (ast.AugAssign,)

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def visit(self, node: ast.AugAssign, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if ctx.enclosing_function() is None:
            return  # module import / class body runs single-threaded
        target = node.target
        shared: str | None = None
        if isinstance(target, ast.Name):
            if ctx.resolves_to_module_global(target.id):
                shared = f"module-level name {target.id!r}"
        else:
            root = _root_name(target)
            if root is None:
                return
            if root == "cls":
                shared = "class-level state via 'cls'"
            elif root == "self":
                return  # instance state: REP003 tracks shared containers
            elif ctx.resolves_to_module_global(root):
                shared = f"state reached through module-level name {root!r}"
            else:
                enclosing_class = ctx.enclosing_class()
                if enclosing_class is not None and root == enclosing_class.name:
                    shared = f"class attribute of {root!r}"
        if shared is None:
            return
        if ctx.inside_lock_with():
            return
        yield (
            node.lineno,
            f"augmented assignment on {shared} without an enclosing "
            "'with <lock>:' — a concurrent writer loses increments "
            "(the PR 4 metrics race)",
        )


class AliasedCacheReturnRule(Rule):
    """REP004: getters must not hand out writable cached arrays."""

    id = "REP004"
    title = "cached array returned without copy/freeze"
    node_types = (ast.Return, ast.Yield)
    _PREFIXES = ("get", "lookup", "rows")

    def applies(self, ctx: FileContext) -> bool:
        # only meaningful where numpy arrays can flow; keeps dict-returning
        # getters in numpy-free modules out of scope by construction
        return ctx.imports_numpy and not ctx.is_test

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        value = node.value
        if value is None:
            return
        func = ctx.enclosing_function()
        if func is None or not func.name.lower().startswith(self._PREFIXES):
            return
        candidate = value
        if isinstance(candidate, ast.Subscript):
            candidate = candidate.value
        if not isinstance(candidate, ast.Attribute):
            return
        root = _root_name(candidate)
        if root not in ("self", "cls"):
            return
        yield (
            node.lineno,
            f"{func.name}() returns instance-attribute state by reference — "
            "return a .copy(), freeze it (setflags(write=False)), or "
            "suppress with a justification (the EmbeddingRowCache aliasing bug)",
        )


class RawLockAcquireRule(Rule):
    """REP005: locks are taken with ``with``, never bare ``acquire()``."""

    id = "REP005"
    title = "lock.acquire() outside a context manager"
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[tuple[int, str]]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            yield (
                node.lineno,
                ".acquire() without a context manager leaks the lock on any "
                "exception before release — use 'with lock:' instead",
            )


def _is_inf_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.lower().lstrip("+-") in ("inf", "infinity")
    )


def _float_operand(node: ast.expr) -> str | None:
    """Why this operand is float-typed, or None when it is not provably so.

    Exact sentinels are deliberately *not* float-typed for this rule:
    ``0.0`` and ``float('inf')`` compare exactly by construction, and the
    codebase uses them as in-band markers.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        if node.value == 0.0 or node.value in (float("inf"), float("-inf")):
            return None
        return f"float literal {node.value!r}"
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        value = node.operand.value
        if isinstance(value, float) and value != 0.0 and value != float("inf"):
            return f"float literal -{value!r}"
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return "true-division result"
    if _is_inf_call(node):
        return None
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain == ["float"] or chain[-1:] == ["float64"] or chain[-1:] == ["float32"]:
            return f"{'.'.join(chain)}() result"
    return None


class FloatEqualityRule(Rule):
    """REP006: ``==``/``!=`` on float-typed expressions."""

    id = "REP006"
    title = "float equality comparison"
    node_types = (ast.Compare,)

    def visit(self, node: ast.Compare, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            reason = _float_operand(operand)
            if reason is not None:
                yield (
                    node.lineno,
                    f"float equality against {reason} — compare with a "
                    "tolerance (math.isclose / np.isclose), or suppress "
                    "where exact determinism is the point",
                )
                return


_LOGGING_ATTRS = frozenset({
    "inc", "observe", "set", "dec",  # obs metric mutators
    "debug", "info", "warning", "error", "exception", "critical", "log",
    "record", "quarantine", "push",
})


class SwallowedExceptionRule(Rule):
    """REP007: broad handlers must re-raise, log, or count."""

    id = "REP007"
    title = "broad exception handler swallows silently"
    node_types = (ast.ExceptHandler,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.package in ("workflow", "resilience") and not ctx.is_test

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True  # bare except
        names = [type_node] if not isinstance(type_node, ast.Tuple) else type_node.elts
        for name in names:
            if isinstance(name, ast.Name) and name.id in ("Exception", "BaseException"):
                return True
        return False

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if not self._is_broad(node.type):
            return
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Raise):
                    return
                if isinstance(inner, ast.Call):
                    func = inner.func
                    if isinstance(func, ast.Attribute) and func.attr in _LOGGING_ATTRS:
                        return
        yield (
            node.lineno,
            "broad except swallows the error without re-raising, logging, or "
            "counting it — the resilience ladder degrades loudly or not at all",
        )


class SnapshotMutationRule(Rule):
    """REP008: objects from ``snapshot_shards``/``shard_for`` are read-only."""

    id = "REP008"
    title = "mutation of a TSDB snapshot shard"
    node_types = (ast.Assign, ast.AugAssign, ast.For)

    def start_file(self, ctx: FileContext) -> None:
        self._tracked: set[str] = set()

    @staticmethod
    def _binds_snapshot(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        chain = _attr_chain(value.func)
        return bool(chain) and chain[-1] in ("snapshot_shards", "shard_for")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.For):
            # for shard in shards.shards: ... propagates snapshot-ness
            iter_root = _root_name(node.iter)
            if (
                iter_root in self._tracked
                and isinstance(node.target, ast.Name)
            ):
                self._tracked.add(node.target.id)
            return
        if isinstance(node, ast.Assign):
            if self._binds_snapshot(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._tracked.add(target.id)
                return
            targets = node.targets
        else:  # AugAssign
            targets = [node.target]
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            root = _root_name(target)
            if root in self._tracked:
                yield (
                    target.lineno,
                    f"write through {root!r}, a read-only TSDB snapshot — "
                    "snapshot isolation is what makes parallel campaigns "
                    "byte-identical; write to the live TSDB instead",
                )


#: Layer names only repro.nn may touch: everything else goes through the
#: SequenceEncoder registry (create_encoder / compile_plan).
_ENCODER_INTERNAL_NAMES = frozenset(
    {"GRU", "GRUCell", "LSTM", "LSTMCell", "AdditiveAttention"}
)
_ENCODER_INTERNAL_MODULES = frozenset({"gru", "lstm", "attention"})


class EncoderImportBoundaryRule(Rule):
    """REP009: only ``repro.nn`` may import raw recurrent/attention layers."""

    id = "REP009"
    title = "raw sequence-layer import outside repro.nn"
    node_types = (ast.Import, ast.ImportFrom)

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.package is not None
            and ctx.package != "nn"
            and not ctx.is_test
            and not ctx.is_benchmark
        )

    @staticmethod
    def _module_tail(module: str | None) -> str | None:
        if not module:
            return None
        parts = module.split(".")
        # matches repro.nn.gru, nn.gru, ..nn.gru (relative: module == "nn.gru")
        if len(parts) >= 2 and parts[-2] == "nn":
            return parts[-1]
        return None

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                tail = self._module_tail(alias.name)
                if tail in _ENCODER_INTERNAL_MODULES:
                    yield (
                        node.lineno,
                        f"import of nn.{tail} outside repro.nn — go through the "
                        "SequenceEncoder registry (repro.nn.create_encoder / "
                        "compile_plan) so new encoders need no call-site edits",
                    )
            return
        tail = self._module_tail(node.module)
        from_encoder_module = tail in _ENCODER_INTERNAL_MODULES
        for alias in node.names:
            if alias.name in _ENCODER_INTERNAL_NAMES or (
                from_encoder_module and alias.name != "*"
            ):
                yield (
                    node.lineno,
                    f"import of {alias.name!r} outside repro.nn — go through the "
                    "SequenceEncoder registry (repro.nn.create_encoder / "
                    "compile_plan) so new encoders need no call-site edits",
                )


class ServeInternalBoundaryRule(Rule):
    """REP010: only ``repro.serve`` may import ``serve._internal``."""

    id = "REP010"
    title = "serve._internal import outside repro.serve"
    node_types = (ast.Import, ast.ImportFrom)

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.package is not None
            and ctx.package != "serve"
            and not ctx.is_test
            and not ctx.is_benchmark
        )

    @staticmethod
    def _is_internal(module: str | None) -> bool:
        if not module:
            return False
        parts = module.split(".")
        # matches repro.serve._internal[.x], serve._internal[.x] — and the
        # relative spellings, whose module text starts at "serve" too.
        for i, part in enumerate(parts):
            if part == "_internal" and i >= 1 and parts[i - 1] == "serve":
                return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [node.module]
        for module in modules:
            if self._is_internal(module):
                yield (
                    node.lineno,
                    "import of serve._internal outside repro.serve — the "
                    "admission/batcher/warm-pool machinery is private; go "
                    "through the repro.serve public surface (Env2VecService "
                    "/ ServeClient) so its shape can change freely",
                )


#: os/signal process-management calls that belong only in the supervisor.
_PROCESS_OS_CALLS = frozenset(
    {"kill", "fork", "_exit", "waitpid", "killpg", "abort"}
)
_PROCESS_SIGNAL_CALLS = frozenset(
    {"signal", "alarm", "setitimer", "pthread_kill", "raise_signal"}
)
#: multiprocessing primitives that spawn or wire up raw processes.
#: (ProcessPoolExecutor is deliberately NOT here — the parallel pool's
#: managed executor is the sanctioned non-supervisor process user.)
_PROCESS_MP_NAMES = frozenset({"Process", "Pipe", "get_context"})


class ProcessManagementBoundaryRule(Rule):
    """REP011: raw process management lives only in the serve supervisor.

    Killing processes, installing signal handlers, and hand-rolled
    ``multiprocessing.Process``/``Pipe`` wiring are exactly the APIs that
    break determinism and liveness when scattered: an ``os.kill`` outside
    the supervisor bypasses epoch bookkeeping (stale-message storms), a
    stray signal handler races the heartbeat loop, and an unsupervised
    ``Process`` is a worker nobody restarts. One file owns them:
    ``serve/_internal/supervisor.py``.
    """

    id = "REP011"
    title = "process-management API outside the serve supervisor"
    node_types = (ast.Call, ast.ImportFrom)

    _SANCTIONED_SUFFIX = ("serve", "_internal", "supervisor.py")

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_test or ctx.is_benchmark:
            return False
        return Path(ctx.path).parts[-3:] != self._SANCTIONED_SUFFIX

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "multiprocessing":
                for alias in node.names:
                    if alias.name in _PROCESS_MP_NAMES:
                        yield (
                            node.lineno,
                            f"import of multiprocessing.{alias.name} outside "
                            "serve._internal.supervisor — raw worker processes "
                            "must be supervised (heartbeats, restart, re-enqueue); "
                            "use WorkerPool or go through the supervisor",
                        )
            return
        chain = _attr_chain(node.func)
        if len(chain) < 2:
            return
        root, attr = chain[0], chain[-1]
        flagged = (
            (root == "os" and attr in _PROCESS_OS_CALLS)
            or (root == "signal" and attr in _PROCESS_SIGNAL_CALLS)
            or (root == "multiprocessing" and attr in _PROCESS_MP_NAMES)
        )
        if flagged:
            yield (
                node.lineno,
                f"{root}.{attr}() outside serve._internal.supervisor — process "
                "lifecycle (kill/fork/signal/Pipe) is the supervisor's job; "
                "scattering it breaks epoch bookkeeping and restart guarantees",
            )


#: numpy calls that allocate a fresh array per invocation — fatal inside
#: a per-timestep loop, where they turn O(hidden²) math into allocator
#: churn (the exact shape of the PR 9 batch-256 regression).
_HOT_LOOP_ALLOCATORS = frozenset({
    "hstack", "vstack", "concatenate", "stack", "column_stack",
    "empty", "zeros", "ones", "empty_like", "zeros_like", "ones_like",
})


class SequenceRunnerAllocationRule(Rule):
    """REP012: sequence-runner hot loops must be allocation-free.

    The fused GRU/LSTM runners in ``nn/ops.py`` execute their timestep
    loop once per sequence step per forward; at batch 256 every fresh
    array allocated there (``np.hstack`` of gate blocks, a bare ``@``
    matmul materializing its result, ``np.zeros`` scratch) costs more
    than the arithmetic it feeds and throttled the compiled engine to
    1.1× autograd. The discipline the fix established: hoist buffers to
    the per-thread workspace before the loop and write into them with
    ``np.matmul(..., out=)`` / in-place activations. This rule pins that
    discipline syntactically for every function whose name marks it as a
    sequence runner (``*_sequence*``).
    """

    id = "REP012"
    title = "allocating op in a sequence-runner hot loop"
    node_types = (ast.Call, ast.BinOp)

    _TARGET_SUFFIX = ("nn", "ops.py")

    def applies(self, ctx: FileContext) -> bool:
        return Path(ctx.path).parts[-2:] == self._TARGET_SUFFIX

    @staticmethod
    def _in_runner_loop(ctx: FileContext) -> bool:
        """True inside a for/while loop of a ``*_sequence*`` function."""
        function = ctx.enclosing_function()
        if function is None or "_sequence" not in function.name:
            return False
        inside_function = False
        for ancestor in ctx.stack:
            if ancestor is function:
                inside_function = True
            elif inside_function and isinstance(ancestor, (ast.For, ast.While)):
                return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult) and self._in_runner_loop(ctx):
                yield (
                    node.lineno,
                    "bare `@` matmul in a sequence-runner timestep loop — it "
                    "allocates its result every step; write into a hoisted "
                    "workspace buffer with np.matmul(..., out=)",
                )
            return
        if not self._in_runner_loop(ctx):
            return
        chain = _attr_chain(node.func)
        if len(chain) != 2 or chain[0] not in ("np", "numpy"):
            return
        attr = chain[1]
        if attr in _HOT_LOOP_ALLOCATORS:
            yield (
                node.lineno,
                f"np.{attr}() in a sequence-runner timestep loop — it "
                "allocates a fresh array every timestep; hoist the buffer "
                "out of the loop (per-thread workspace) and fill it in place",
            )
        elif attr == "matmul" and len(node.args) < 3 and not any(
            keyword.arg == "out" for keyword in node.keywords
        ):
            yield (
                node.lineno,
                "np.matmul without out= in a sequence-runner timestep loop — "
                "the result array is reallocated every step; pass a "
                "preallocated workspace buffer via out=",
            )


ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRNGRule,
    WallClockRule,
    UnlockedSharedStateRule,
    AliasedCacheReturnRule,
    RawLockAcquireRule,
    FloatEqualityRule,
    SwallowedExceptionRule,
    SnapshotMutationRule,
    EncoderImportBoundaryRule,
    ServeInternalBoundaryRule,
    ProcessManagementBoundaryRule,
    SequenceRunnerAllocationRule,
)


def default_registry() -> RuleRegistry:
    """A fresh registry holding the full project rule catalog."""
    registry = RuleRegistry()
    for rule_cls in ALL_RULES:
        registry.register(rule_cls)
    return registry


DEFAULT_REGISTRY = default_registry()
