"""Committed baseline of grandfathered findings.

A baseline entry acknowledges one finding the team has decided to keep —
each carries a one-line ``justification`` so the decision is reviewable.
Matching is by fingerprint (rule id, path, offending source text), never
by line number: unrelated edits above a finding must not invalidate its
entry, and moving the offending line verbatim must not create a "new"
finding.

Two failure modes are symmetrical and both surfaced:

- a finding with no entry is *new* — the scan fails until it is fixed or
  justified into the baseline;
- an entry with no finding is *expired* — the code was fixed, so the
  entry is dead weight that silently licenses a regression; drop it from
  the file (or re-run ``--update-baseline``), and ``--strict-baseline``
  turns expiry into a scan failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .engine import Finding

__all__ = ["BaselineEntry", "Baseline", "apply_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    justification: str = ""

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.snippet}"


class Baseline:
    """An ordered set of grandfathered findings, (de)serializable to JSON."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries: list[BaselineEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def fingerprints(self) -> set[str]:
        return {entry.fingerprint for entry in self.entries}

    # -- io ----------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                snippet=item["snippet"],
                justification=item.get("justification", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "snippet": entry.snippet,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.snippet)
                )
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str = "grandfathered"
    ) -> "Baseline":
        entries = [
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                snippet=finding.snippet,
                justification=justification,
            )
            for finding in findings
        ]
        # one entry per distinct fingerprint
        seen: set[str] = set()
        unique = []
        for entry in entries:
            if entry.fingerprint not in seen:
                seen.add(entry.fingerprint)
                unique.append(entry)
        return cls(unique)


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split a scan against the baseline.

    Returns ``(new, grandfathered, expired)``: findings with no entry,
    findings an entry covers, and entries no finding matched (the code
    they excused has been fixed — prune them).
    """
    known = baseline.fingerprints()
    new = [f for f in findings if f.fingerprint not in known]
    grandfathered = [f for f in findings if f.fingerprint in known]
    live = {f.fingerprint for f in findings}
    expired = [e for e in baseline.entries if e.fingerprint not in live]
    return new, grandfathered, expired
