"""Single-pass AST analysis engine: parse once, dispatch to every rule.

The engine is deliberately small: one :func:`ast.parse` per file, one
depth-first walk, and per-node dispatch to the rules that registered an
interest in that node type. Rules see a :class:`FileContext` carrying the
ancestor stack (for lock-enclosure and scope questions), the module's
import surface, and cheap per-function symbol tables — everything the
project-specific rules in :mod:`repro.analysis.rules` need without a
second pass.

Suppressions are inline comments of the form ``# repro: noqa[REP004]``
(multiple ids comma-separated). A suppression that matches no finding on
its line is itself reported under the reserved id ``REP000`` — dead
pragmas rot into lies about which lines are exempt, so they fail the scan
just like a real finding.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..obs import get_observability

__all__ = [
    "Finding",
    "FileContext",
    "FileScan",
    "Rule",
    "RuleRegistry",
    "AnalysisResult",
    "Analyzer",
    "iter_python_files",
    "UNUSED_SUPPRESSION_ID",
]

_OBS = get_observability()
_M_FILES = _OBS.counter(
    "repro_analysis_files_scanned_total", "Python files parsed by repro.analysis."
)
_M_FINDINGS = _OBS.counter(
    "repro_analysis_findings_total",
    "Raw findings produced by repro.analysis rules (pre-suppression).",
    labels=("rule",),
)
_M_SUPPRESSED = _OBS.counter(
    "repro_analysis_suppressed_total",
    "Findings silenced by an inline `# repro: noqa[...]` pragma.",
)
_H_SCAN = _OBS.histogram(
    "repro_analysis_scan_seconds",
    "End-to-end latency of one repro.analysis scan (all files, all rules).",
    buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0),
)
_H_LINK = _OBS.histogram(
    "repro_analysis_link_seconds",
    "Latency of the phase-2 whole-program link (summaries -> cross-file rules).",
    buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
)
_M_CACHE_HITS = _OBS.counter(
    "repro_analysis_cache_hits_total",
    "Files whose phase-1 scan was replayed from the incremental cache.",
)

#: Reserved rule id for the unused-suppression check.
UNUSED_SUPPRESSION_ID = "REP000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, addressable and fingerprintable.

    The fingerprint deliberately excludes the line *number*: baselined
    findings must survive unrelated edits above them, so identity is the
    (rule, path, source-line-text) triple plus nothing positional.
    """

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    snippet: str  # stripped source text of the offending line
    #: supporting anchors for multi-location findings (cycle edges,
    #: escape-path hops): (path, line, note) triples. Deliberately
    #: excluded from the fingerprint — a cycle is the same cycle even
    #: when an unrelated edit moves one of its edges.
    related: tuple = ()

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        for rel_path, rel_line, note in self.related:
            text += f"\n    {rel_path}:{rel_line}: {note}"
        return text


class FileContext:
    """Everything rules may ask about the file currently being walked."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()
        parts = Path(path).parts
        self.is_test = "tests" in parts or Path(path).name.startswith("test_")
        self.is_benchmark = "benchmarks" in parts
        # the repro subpackage ('core', 'workflow', ...) when under src/repro/
        self.package = ""
        if "repro" in parts:
            tail = parts[parts.index("repro") + 1 :]
            if len(tail) > 1:
                self.package = tail[0]
        self.imports = _module_imports(tree)
        self.imports_numpy = bool({"numpy", "np"} & self.imports)
        #: ancestor stack maintained by the walker; stack[-1] is the parent
        #: of the node currently being dispatched.
        self.stack: list[ast.AST] = []
        self._function_locals: dict[int, frozenset[str]] = {}
        self._module_globals: frozenset[str] | None = None

    # -- source access -----------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- scope questions ---------------------------------------------------
    @property
    def module_globals(self) -> frozenset[str]:
        """Names bound at module scope (assignments, defs, imports)."""
        if self._module_globals is None:
            self._module_globals = frozenset(_bound_names(self.tree.body))
        return self._module_globals

    def enclosing_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def enclosing_class(self) -> ast.ClassDef | None:
        for node in reversed(self.stack):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def function_locals(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
        """Names the function binds locally (params + assignments),
        excluding names it declares ``global``/``nonlocal``."""
        cached = self._function_locals.get(id(func))
        if cached is None:
            args = func.args
            names: set[str] = {
                a.arg
                for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else []),
                )
            }
            names |= _bound_names(func.body)
            names -= _scope_global_decls(func.body)
            cached = frozenset(names)
            self._function_locals[id(func)] = cached
        return cached

    def resolves_to_module_global(self, name: str) -> bool:
        """Does ``name``, read in the current scope, hit module state?"""
        if name not in self.module_globals:
            return False
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # function_locals already excludes `global`-declared names,
                # so a miss here means the name falls through to module scope.
                return name not in self.function_locals(node)
        return True  # read at module scope itself

    def inside_lock_with(self) -> bool:
        """Is the current node lexically inside ``with <something lock-ish>``?

        'Lock-ish' means the context expression's source mentions ``lock``
        (``with self._lock:``, ``with _VALUE_LOCK:``, ``with pool.lock():``)
        — a naming convention this repo already follows everywhere.
        """
        for node in self.stack:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if "lock" in ast.unparse(item.context_expr).lower():
                        return True
        return False


def _module_imports(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
                names.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


def _bound_names(body: Iterable[ast.stmt]) -> set[str]:
    """Names bound by a statement list's own scope (not nested functions)."""
    names: set[str] = set()

    def collect_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
                continue  # nested scope: its assignments are not ours
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name.split(".")[0])
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    collect_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                collect_target(stmt.target)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                collect_target(stmt.target)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        collect_target(item.optional_vars)
            # recurse into compound statements' bodies (same scope)
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if child:
                    visit(child)
            for handler in getattr(stmt, "handlers", []) or []:
                if handler.name:
                    names.add(handler.name)
                visit(handler.body)

    visit(body)
    return names


def _scope_global_decls(body: Iterable[ast.stmt]) -> set[str]:
    """Names declared ``global``/``nonlocal`` in this scope (not nested defs)."""
    names: set[str] = set()

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                names.update(stmt.names)
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if child:
                    visit(child)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)

    visit(body)
    return names


class Rule:
    """Base class: subclasses declare ``id``/``title`` and visit hooks.

    ``node_types`` names the AST node classes the rule wants dispatched to
    :meth:`visit`; :meth:`start_file` / :meth:`finish_file` bracket each
    file for rules that keep per-file state (dataflow rules).
    """

    id: str = "REP000"
    title: str = ""
    node_types: tuple[type, ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        return True

    def start_file(self, ctx: FileContext) -> None:
        pass

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[int, str]]:
        """Yield ``(lineno, message)`` pairs for violations at ``node``."""
        return iter(())

    def finish_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        return iter(())


class RuleRegistry:
    """Ordered rule set with id-uniqueness and by-node-type dispatch maps."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule | type[Rule]) -> Rule:
        if isinstance(rule, type):
            rule = rule()
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        if not re.fullmatch(r"REP\d{3}", rule.id):
            raise ValueError(f"rule id must look like REP### ; got {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"no rule registered under {rule_id!r}") from None

    def ids(self) -> list[str]:
        return sorted(self._rules)


@dataclass
class FileScan:
    """Phase-1 outputs for one file: what the cache stores and replays."""

    findings: list[Finding]
    n_suppressed: int
    summary: object  # ModuleSummary (typed loosely to keep imports acyclic)
    #: line -> cross-file rule ids suppressed there; resolved after phase 2
    deferred: dict[int, list[str]] = field(default_factory=dict)


@dataclass
class AnalysisResult:
    """Outcome of one scan, before/after baseline application."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    n_cache_hits: int = 0
    link_seconds: float = 0.0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                suppressions.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - parse already succeeded
        pass
    return suppressions


class Analyzer:
    """Run every applicable rule over a set of files in one AST pass each.

    ``cross_rules`` configures phase 2 (the whole-program link): the
    default ``"auto"`` loads :func:`repro.analysis.program.default_cross_rules`,
    an empty sequence disables linking. Phase 2 only runs in
    :meth:`analyze_paths` — :meth:`analyze_source` sees a single file and
    has no program to link, so cross-file suppressions in lone sources
    are dropped silently rather than reported as unused.
    """

    def __init__(self, registry: RuleRegistry, cross_rules="auto"):
        self.registry = registry
        if cross_rules == "auto":
            from .program import default_cross_rules

            cross_rules = default_cross_rules()
        self.cross_rules = tuple(cross_rules or ())
        self._cross_ids = frozenset(rule.id for rule in self.cross_rules)

    # -- single source unit ------------------------------------------------
    def analyze_source(self, source: str, path: str) -> list[Finding]:
        """Analyze one in-memory source text as if it lived at ``path``."""
        return self._analyze_unit(source, path).findings

    def _analyze_unit(self, source: str, path: str) -> FileScan:
        from .summaries import summarize_module

        tree = ast.parse(source, filename=path)
        ctx = FileContext(path, tree, source)
        summary = summarize_module(tree, path)
        active = [rule for rule in self.registry if rule.applies(ctx)]
        if not active and not self._cross_ids:
            return FileScan([], 0, summary)
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)

        raw: list[tuple[str, int, str]] = []  # (rule_id, lineno, message)

        def walk(node: ast.AST) -> None:
            for rule in dispatch.get(type(node), ()):
                for lineno, message in rule.visit(node, ctx):
                    raw.append((rule.id, lineno, message))
            ctx.stack.append(node)
            for child in ast.iter_child_nodes(node):
                walk(child)
            ctx.stack.pop()

        walk(tree)
        for rule in active:
            for lineno, message in rule.finish_file(ctx):
                raw.append((rule.id, lineno, message))

        # -- suppressions ---------------------------------------------------
        suppressions = _parse_suppressions(source)
        used: dict[int, set[str]] = {}
        findings: list[Finding] = []
        deferred: dict[int, list[str]] = {}
        n_suppressed = 0
        for rule_id, lineno, message in raw:
            _M_FINDINGS.labels(rule=rule_id).inc()
            if rule_id in suppressions.get(lineno, ()):
                used.setdefault(lineno, set()).add(rule_id)
                _M_SUPPRESSED.inc()
                n_suppressed += 1
                continue
            findings.append(
                Finding(rule_id, path, lineno, message, self._snippet(ctx, lineno))
            )
        for lineno, ids in sorted(suppressions.items()):
            unused = ids - used.get(lineno, set())
            # cross-file rule pragmas can only be judged after phase 2:
            # defer them instead of calling them dead here.
            cross = sorted(unused & self._cross_ids)
            if cross:
                deferred[lineno] = cross
            for rule_id in sorted(unused - self._cross_ids):
                _M_FINDINGS.labels(rule=UNUSED_SUPPRESSION_ID).inc()
                findings.append(
                    Finding(
                        UNUSED_SUPPRESSION_ID,
                        path,
                        lineno,
                        f"unused suppression: no {rule_id} finding on this line",
                        self._snippet(ctx, lineno),
                    )
                )
        findings.sort(key=lambda f: (f.line, f.rule))
        return FileScan(findings, n_suppressed, summary, deferred)

    @staticmethod
    def _snippet(ctx: FileContext, lineno: int) -> str:
        return ctx.line_text(lineno)

    # -- trees of files ----------------------------------------------------
    def analyze_paths(
        self,
        paths: Iterable[str | Path],
        root: str | Path | None = None,
        on_file: Callable[[Path], None] | None = None,
        cache=None,
    ) -> AnalysisResult:
        """Scan files/directories; paths in findings are relative to ``root``
        (default: the current working directory) when possible.

        ``cache`` is an optional :class:`repro.analysis.cache.AnalysisCache`:
        phase 1 is replayed from it for files whose content hash matches,
        and phase 2 (the whole-program link) always re-runs over the full
        summary set, so cached and fresh files link identically.
        """
        root = Path(root) if root is not None else Path.cwd()
        result = AnalysisResult()
        scans: list[tuple[str, FileScan]] = []
        sources: dict[str, list[str]] = {}
        with _H_SCAN.time() as timer:
            for file_path in iter_python_files(paths):
                if on_file is not None:
                    on_file(file_path)
                try:
                    rel = file_path.resolve().relative_to(root.resolve()).as_posix()
                except ValueError:
                    rel = file_path.as_posix()
                try:
                    source = file_path.read_text()
                except OSError as error:
                    result.parse_errors.append(f"{rel}: {error}")
                    continue
                sources[rel] = source.splitlines()
                scan = None
                digest = ""
                if cache is not None:
                    digest = hashlib.sha256(
                        source.encode("utf-8", errors="replace")
                    ).hexdigest()
                    scan = cache.load(rel, digest)
                if scan is None:
                    try:
                        scan = self._analyze_unit(source, rel)
                    except SyntaxError as error:
                        result.parse_errors.append(f"{rel}: {error}")
                        continue
                    if cache is not None:
                        cache.store(rel, digest, scan)
                else:
                    result.n_cache_hits += 1
                    _M_CACHE_HITS.inc()
                result.n_files += 1
                _M_FILES.inc()
                result.n_suppressed += scan.n_suppressed
                result.findings.extend(scan.findings)
                scans.append((rel, scan))
            if self.cross_rules and scans:
                self._link(result, scans, sources)
        result.elapsed_seconds = timer.elapsed
        result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return result

    def _link(
        self,
        result: AnalysisResult,
        scans: list[tuple[str, FileScan]],
        sources: dict[str, list[str]],
    ) -> None:
        """Phase 2: link summaries, run cross-file rules, settle deferred
        cross-rule suppressions."""
        from .program import ProgramModel

        def snippet_at(path: str, line: int) -> str:
            lines = sources.get(path)
            if lines and 1 <= line <= len(lines):
                return lines[line - 1].strip()
            return ""

        with _H_LINK.time() as timer:
            program = ProgramModel(scan.summary for _, scan in scans)
            deferred: dict[str, dict[int, set[str]]] = {
                rel: {line: set(ids) for line, ids in scan.deferred.items()}
                for rel, scan in scans
                if scan.deferred
            }
            used: dict[tuple[str, int], set[str]] = {}
            for rule in self.cross_rules:
                for finding in rule.run(program):
                    _M_FINDINGS.labels(rule=finding.rule).inc()
                    if finding.rule in deferred.get(finding.path, {}).get(finding.line, ()):
                        used.setdefault((finding.path, finding.line), set()).add(finding.rule)
                        _M_SUPPRESSED.inc()
                        result.n_suppressed += 1
                        continue
                    result.findings.append(
                        replace(finding, snippet=snippet_at(finding.path, finding.line))
                    )
            for rel, per_line in sorted(deferred.items()):
                for line, ids in sorted(per_line.items()):
                    for rule_id in sorted(ids - used.get((rel, line), set())):
                        _M_FINDINGS.labels(rule=UNUSED_SUPPRESSION_ID).inc()
                        result.findings.append(
                            Finding(
                                UNUSED_SUPPRESSION_ID,
                                rel,
                                line,
                                f"unused suppression: no {rule_id} finding on this line",
                                snippet_at(rel, line),
                            )
                        )
        result.link_seconds = timer.elapsed


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``*.py`` files."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
