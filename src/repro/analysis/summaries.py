"""Phase 1 of the whole-program analyzer: per-file summaries.

The single-file rules (REP001-REP012) see one AST at a time; the
cross-file rules (REP013-REP016 in :mod:`repro.analysis.program`) need a
repo-wide view — which attributes a class family guards with which lock,
which locks are held while which functions are called, which callables
cross a process boundary, where seed parameters stop flowing. Shipping
whole ASTs to a linker would make incremental scans impossible, so phase
1 distills each file into a :class:`ModuleSummary`: a small, JSON-
serializable record of exactly the facts the linker consumes. The
summary is a pure function of the file's source text, which is what lets
the incremental cache key it by content hash.

Everything here is deliberately syntactic (no type inference): lock
expressions are recognized by the repo's naming convention (the source
text mentions ``lock``), resource classes by a fixed name set, seeds by
parameter-name convention. Where that over-approximates, the usual
escape hatches apply (inline ``# repro: noqa[...]``, baseline entries).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, fields
from typing import Iterator

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "LockRef",
    "AttrAccess",
    "AcquireEdge",
    "LockSite",
    "HeldCall",
    "CallSite",
    "DispatchSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "summarize_module",
    "module_name_for",
    "is_seed_name",
    "RESOURCE_CLASSES",
    "RESOURCE_PARAM_NAMES",
]

#: Bump when the summary shape or extraction semantics change: cached
#: summaries from older versions must not feed the linker.
SUMMARY_SCHEMA_VERSION = 1

#: Classes that hold parent-process-only state (open files, subscriber
#: hooks, pipes to children). An instance reachable from a callable that
#: is shipped to a worker process is a process-escape (REP015): the
#: child gets a pickled copy (silently diverging state) or an unpicklable
#: crash, never the parent's live object.
RESOURCE_CLASSES = frozenset({
    "TimeSeriesDB",
    "ModelStore",
    "AlarmStore",
    "DeadLetterStore",
    "MetricCollector",
    "TSDBExporter",
})

#: Parameter/attribute names conventionally bound to the above resources
#: (``self._store = store``); used when the constructor is out of sight.
RESOURCE_PARAM_NAMES = frozenset({
    "store", "model_store", "alarm_store", "tsdb", "database",
    "collector", "dead_letters", "dead_letter_store",
})

#: Constructor names whose result is a lock-like synchronization object.
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Method names that mutate their receiver in place: a call through
#: ``self.attr.<mutator>()`` counts as a *write* to the attribute.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop", "popleft",
    "popitem", "clear", "update", "setdefault", "add", "discard",
    "move_to_end", "sort", "reverse",
})

_RNG_CTORS = frozenset({"default_rng", "RandomState", "ensure_rng", "Generator", "SeedSequence"})

#: APIs that ship a callable to another process (or may, for WorkerPool,
#: whose backend is chosen at runtime). ``target=`` keyword is the
#: Process spelling; positional-first is the executor/pool spelling.
_DISPATCH_METHODS = frozenset({"submit", "map", "apply_async", "apply", "starmap"})

_SEED_EXACT = frozenset({"seed", "rng", "random_state", "generator"})


def is_seed_name(name: str) -> bool:
    """Parameter-name convention for values that carry determinism."""
    lowered = name.lower()
    return (
        lowered in _SEED_EXACT
        or lowered.endswith("_seed")
        or lowered.endswith("_rng")
        or lowered.startswith("seed_")
    )


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/obs/metrics.py`` -> ``repro.obs.metrics``; paths outside a
    recognized source root fall back to the full path with separators
    dotted, which keeps fixture trees linkable (``proj/a.py`` -> ``proj.a``).
    """
    parts = path.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


# ---------------------------------------------------------------------------
# Summary records
# ---------------------------------------------------------------------------


def _as_dict(obj) -> dict:
    out = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, tuple):
            value = [v.to_dict() if hasattr(v, "to_dict") else list(v) if isinstance(v, tuple) else v for v in value]
        elif isinstance(value, dict):
            value = dict(value)
        out[f.name] = value
    return out


@dataclass(frozen=True)
class LockRef:
    """One lock expression, pre-canonicalization.

    ``via_self`` locks are attributes of the enclosing instance
    (``with self._lock:``) and carry the enclosing class; bare names are
    module-level (or imported) locks resolved by the linker. ``is_async``
    marks ``async with`` — asyncio locks serialize coroutines, they do not
    fence memory, so REP013 ignores them while REP014 keeps them (a cycle
    of asyncio locks deadlocks the event loop just as hard).
    """

    name: str
    via_self: bool = False
    cls: str = ""
    is_async: bool = False

    def to_dict(self) -> dict:
        return {"name": self.name, "via_self": self.via_self,
                "cls": self.cls, "is_async": self.is_async}

    @classmethod
    def from_dict(cls, data: dict) -> "LockRef":
        return cls(data["name"], data["via_self"], data["cls"], data["is_async"])


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` touch inside a method, with the locks held."""

    attr: str
    kind: str  # "read" | "write"
    locks: tuple  # tuple[LockRef, ...] — sync locks lexically held
    method: str
    line: int

    def to_dict(self) -> dict:
        return {"attr": self.attr, "kind": self.kind,
                "locks": [lock.to_dict() for lock in self.locks],
                "method": self.method, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "AttrAccess":
        return cls(data["attr"], data["kind"],
                   tuple(LockRef.from_dict(d) for d in data["locks"]),
                   data["method"], data["line"])


@dataclass(frozen=True)
class AcquireEdge:
    """``with A: ... with B:`` — B acquired while A is held (one file)."""

    held: LockRef
    acquired: LockRef
    function: str
    line: int  # where the inner acquire happens

    def to_dict(self) -> dict:
        return {"held": self.held.to_dict(), "acquired": self.acquired.to_dict(),
                "function": self.function, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "AcquireEdge":
        return cls(LockRef.from_dict(data["held"]), LockRef.from_dict(data["acquired"]),
                   data["function"], data["line"])


@dataclass(frozen=True)
class LockSite:
    """One lock acquisition (``with L:``) regardless of nesting.

    :class:`AcquireEdge` only exists when another lock is already held;
    the interprocedural half of REP014 also needs the plain fact "calling
    ``f`` acquires ``L``", which this records per function.
    """

    lock: LockRef
    function: str
    line: int

    def to_dict(self) -> dict:
        return {"lock": self.lock.to_dict(), "function": self.function,
                "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "LockSite":
        return cls(LockRef.from_dict(data["lock"]), data["function"], data["line"])


@dataclass(frozen=True)
class HeldCall:
    """A call made while a lock is held — the interprocedural half of
    the may-hold-while-acquiring graph."""

    held: LockRef
    callee: str  # dotted callee as written ("self.m", "mod.f", "f")
    function: str
    line: int

    def to_dict(self) -> dict:
        return {"held": self.held.to_dict(), "callee": self.callee,
                "function": self.function, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "HeldCall":
        return cls(LockRef.from_dict(data["held"]), data["callee"],
                   data["function"], data["line"])


@dataclass(frozen=True)
class CallSite:
    """One call edge out of a function, with seed-argument bookkeeping."""

    callee: str
    line: int
    n_pos_args: int
    keywords: tuple  # tuple[str, ...]
    has_star: bool  # *args/**kwargs present: argument mapping is unknowable
    seed_kwargs: tuple  # keyword names that are seed-ish
    caller_seeds_passed: tuple  # caller seed params appearing in any argument

    def to_dict(self) -> dict:
        return {"callee": self.callee, "line": self.line,
                "n_pos_args": self.n_pos_args, "keywords": list(self.keywords),
                "has_star": self.has_star, "seed_kwargs": list(self.seed_kwargs),
                "caller_seeds_passed": list(self.caller_seeds_passed)}

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(data["callee"], data["line"], data["n_pos_args"],
                   tuple(data["keywords"]), data["has_star"],
                   tuple(data["seed_kwargs"]), tuple(data["caller_seeds_passed"]))


@dataclass(frozen=True)
class DispatchSite:
    """A callable handed to a worker-dispatch API.

    ``boundary`` records how hard the process boundary is:

    - ``"process"`` — definitely another process (``Process(target=...)``,
      ``ProcessPoolExecutor``, ``os.fork`` descendants);
    - ``"maybe"`` — a runtime-configured pool (``WorkerPool``) whose
      backend can be processes;
    - ``"thread"`` — thread-only, out of REP015 scope (kept for the
      summary's completeness).
    """

    api: str  # "Process(target=)" | "submit" | "map" | ...
    callee: str
    boundary: str
    function: str
    line: int

    def to_dict(self) -> dict:
        return {"api": self.api, "callee": self.callee, "boundary": self.boundary,
                "function": self.function, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "DispatchSite":
        return cls(data["api"], data["callee"], data["boundary"],
                   data["function"], data["line"])


@dataclass(frozen=True)
class FunctionSummary:
    """What the linker knows about one function, method, or lambda."""

    qualname: str  # "f", "C.m", "f.<locals>.g", "f.<locals>.<lambda:12>"
    cls: str  # enclosing class name ("" for free functions)
    line: int
    params: tuple
    defaulted_params: tuple  # params carrying a default value
    seed_params: tuple
    seed_params_used: tuple  # seed params that are read somewhere in the body
    constructs_rng: bool  # body calls default_rng/ensure_rng/RandomState/...
    reads: tuple  # tuple[tuple[name, line], ...] — non-local name reads
    self_attr_reads: tuple  # tuple[tuple[attr, line], ...]
    calls: tuple  # tuple[CallSite, ...]
    local_ctors: dict  # local name -> constructor last-name ("WorkerPool")
    is_stub: bool  # body is pass/.../docstring/raise only

    def to_dict(self) -> dict:
        data = _as_dict(self)
        data["calls"] = [c.to_dict() for c in self.calls]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"], cls=data["cls"], line=data["line"],
            params=tuple(data["params"]),
            defaulted_params=tuple(data["defaulted_params"]),
            seed_params=tuple(data["seed_params"]),
            seed_params_used=tuple(data["seed_params_used"]),
            constructs_rng=data["constructs_rng"],
            reads=tuple(tuple(r) for r in data["reads"]),
            self_attr_reads=tuple(tuple(r) for r in data["self_attr_reads"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            local_ctors=dict(data["local_ctors"]),
            is_stub=data["is_stub"],
        )


@dataclass(frozen=True)
class ClassSummary:
    """Attribute model of one class: locks, resources, guarded accesses."""

    name: str
    bases: tuple  # base names as written ("_Metric", "base.Module")
    line: int
    lock_attrs: tuple  # attrs assigned a Lock()/RLock()/... anywhere
    resource_attrs: dict  # attr -> kind ("ModelStore", "param:store", ...)
    ctor_attrs: dict  # attr -> constructor last-name (dispatch receivers)
    accesses: tuple  # tuple[AttrAccess, ...]

    def to_dict(self) -> dict:
        data = _as_dict(self)
        data["accesses"] = [a.to_dict() for a in self.accesses]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClassSummary":
        return cls(
            name=data["name"], bases=tuple(data["bases"]), line=data["line"],
            lock_attrs=tuple(data["lock_attrs"]),
            resource_attrs=dict(data["resource_attrs"]),
            ctor_attrs=dict(data["ctor_attrs"]),
            accesses=tuple(AttrAccess.from_dict(a) for a in data["accesses"]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything phase 2 needs to know about one file."""

    path: str
    module: str
    import_map: dict  # local name -> absolute dotted target
    resource_globals: dict  # module-level name -> resource class name
    functions: tuple  # tuple[FunctionSummary, ...]
    classes: tuple  # tuple[ClassSummary, ...]
    acquires: tuple  # tuple[AcquireEdge, ...]
    lock_sites: tuple  # tuple[LockSite, ...]
    held_calls: tuple  # tuple[HeldCall, ...]
    dispatches: tuple  # tuple[DispatchSite, ...]

    def to_dict(self) -> dict:
        return {
            "path": self.path, "module": self.module,
            "import_map": dict(self.import_map),
            "resource_globals": dict(self.resource_globals),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "acquires": [a.to_dict() for a in self.acquires],
            "lock_sites": [s.to_dict() for s in self.lock_sites],
            "held_calls": [h.to_dict() for h in self.held_calls],
            "dispatches": [d.to_dict() for d in self.dispatches],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            path=data["path"], module=data["module"],
            import_map=dict(data["import_map"]),
            resource_globals=dict(data["resource_globals"]),
            functions=tuple(FunctionSummary.from_dict(f) for f in data["functions"]),
            classes=tuple(ClassSummary.from_dict(c) for c in data["classes"]),
            acquires=tuple(AcquireEdge.from_dict(a) for a in data["acquires"]),
            lock_sites=tuple(LockSite.from_dict(s) for s in data["lock_sites"]),
            held_calls=tuple(HeldCall.from_dict(h) for h in data["held_calls"]),
            dispatches=tuple(DispatchSite.from_dict(d) for d in data["dispatches"]),
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    """``self.pool.map`` -> ``"self.pool.map"``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _ctor_name(value: ast.expr) -> str | None:
    """Last component of a constructor-looking call's callee, if any."""
    if not isinstance(value, ast.Call):
        return None
    chain = _dotted(value.func)
    if chain is None:
        return None
    return chain.split(".")[-1]


def _lock_ref(item: ast.withitem, cls: str, is_async: bool) -> LockRef | None:
    """A :class:`LockRef` for one ``with`` item, when it looks lock-ish."""
    expr = item.context_expr
    # unwrap `lock.acquire_timeout()`-style calls down to the receiver
    text = ast.unparse(expr).lower()
    if "lock" not in text and "sem" not in text and "cond" not in text:
        return None
    if "lock" not in text:
        # only the explicit lock convention participates; semaphores and
        # conditions without 'lock' in the name stay out of scope.
        return None
    dotted = _dotted(expr)
    if dotted is None and isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] == "self" and len(parts) == 2:
        return LockRef(name=parts[1], via_self=True, cls=cls, is_async=is_async)
    if len(parts) == 1:
        return LockRef(name=parts[0], via_self=False, cls="", is_async=is_async)
    if len(parts) == 2 and parts[0] not in ("self", "cls"):
        # module-attr lock (`locks.GLOBAL`) — keep the dotted spelling;
        # the linker resolves the root through the import map.
        return LockRef(name=dotted, via_self=False, cls="", is_async=is_async)
    return None


_STUB_NODES = (ast.Pass, ast.Raise)


def _is_stub(body: list[ast.stmt]) -> bool:
    real = [
        stmt for stmt in body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
    ]
    return all(isinstance(stmt, _STUB_NODES) for stmt in real) if real else True


class _FunctionState:
    """Accumulators for the function currently being walked."""

    def __init__(self, qualname: str, cls: str, node) -> None:
        self.qualname = qualname
        self.cls = cls
        self.node = node
        self.reads: list[tuple[str, int]] = []
        self.self_attr_reads: list[tuple[str, int]] = []
        self.calls: list[CallSite] = []
        self.local_ctors: dict[str, str] = {}
        self.constructs_rng = False
        self.seed_reads: set[str] = set()
        if isinstance(node, ast.Lambda):
            self.params = tuple(a.arg for a in (
                *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs))
            self.defaulted: tuple[str, ...] = ()
            self.body = [ast.Expr(value=node.body)]
        else:
            args = node.args
            self.params = tuple(a.arg for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ))
            positional = [*args.posonlyargs, *args.args]
            defaulted = [a.arg for a in positional[len(positional) - len(args.defaults):]]
            defaulted += [
                a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults) if d is not None
            ]
            self.defaulted = tuple(defaulted)
            self.body = node.body
        self.seed_params = tuple(p for p in self.params if is_seed_name(p))

    def finish(self, line: int) -> FunctionSummary:
        bound = set(self.params) | set(self.local_ctors)
        reads = tuple(sorted({(n, ln) for n, ln in self.reads if n not in bound},
                             key=lambda item: (item[1], item[0])))
        return FunctionSummary(
            qualname=self.qualname, cls=self.cls, line=line,
            params=self.params, defaulted_params=self.defaulted,
            seed_params=self.seed_params,
            seed_params_used=tuple(p for p in self.seed_params if p in self.seed_reads),
            constructs_rng=self.constructs_rng,
            reads=reads,
            self_attr_reads=tuple(sorted(set(self.self_attr_reads))[:64]),
            calls=tuple(self.calls),
            local_ctors=dict(self.local_ctors),
            is_stub=_is_stub(self.body),
        )


class _Extractor(ast.NodeVisitor):
    """One walk producing the :class:`ModuleSummary` of a parsed file."""

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.package = module.rsplit(".", 1)[0] if "." in module else ""
        self.import_map: dict[str, str] = {}
        self.resource_globals: dict[str, str] = {}
        self.functions: list[FunctionSummary] = []
        self.class_stack: list[dict] = []
        self.classes: list[ClassSummary] = []
        self.func_stack: list[_FunctionState] = []
        self.lock_stack: list[LockRef] = []
        self.acquires: list[AcquireEdge] = []
        self.lock_sites: list[LockSite] = []
        self.held_calls: list[HeldCall] = []
        self.dispatches: list[DispatchSite] = []

    # -- helpers -----------------------------------------------------------
    @property
    def _cls(self) -> dict | None:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def _fn(self) -> _FunctionState | None:
        return self.func_stack[-1] if self.func_stack else None

    def _qual(self, name: str) -> str:
        if self.func_stack:
            return f"{self.func_stack[-1].qualname}.<locals>.{name}"
        if self.class_stack:
            return f"{self.class_stack[-1]['name']}.{name}"
        return name

    def _sync_locks(self) -> tuple[LockRef, ...]:
        return tuple(lock for lock in self.lock_stack if not lock.is_async)

    def _resolve_local(self, name: str) -> str:
        """Absolute dotted target of a local name, or the name itself."""
        return self.import_map.get(name, name)

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.import_map[local] = alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        if node.level:
            # relative import: resolve against this module's package
            base_parts = self.module.split(".")
            base_parts = base_parts[: len(base_parts) - node.level]
            base = ".".join(base_parts)
            source = f"{base}.{node.module}" if node.module else base
        else:
            source = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.import_map[local] = f"{source}.{alias.name}" if source else alias.name

    # -- scopes ------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        state = {
            "name": node.name,
            "bases": tuple(b for b in (_dotted(base) for base in node.bases) if b),
            "line": node.lineno,
            "lock_attrs": set(),
            "resource_attrs": {},
            "ctor_attrs": {},
            "accesses": [],
        }
        self.class_stack.append(state)
        self.generic_visit(node)
        self.class_stack.pop()
        self.classes.append(ClassSummary(
            name=state["name"], bases=state["bases"], line=state["line"],
            lock_attrs=tuple(sorted(state["lock_attrs"])),
            resource_attrs=dict(state["resource_attrs"]),
            ctor_attrs=dict(state["ctor_attrs"]),
            accesses=tuple(dict.fromkeys(state["accesses"])),
        ))

    def _enter_function(self, node, name: str) -> None:
        qualname = self._qual(name)
        cls = self.class_stack[-1]["name"] if self.class_stack and not self.func_stack else ""
        state = _FunctionState(qualname, cls, node)
        self.func_stack.append(state)
        saved_locks, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved_locks
        self.func_stack.pop()
        self.functions.append(state.finish(node.lineno))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_function(node, f"<lambda:{node.lineno}>")

    # -- with (locks) ------------------------------------------------------
    def _visit_with(self, node, is_async: bool) -> None:
        cls = self.class_stack[-1]["name"] if self.class_stack else ""
        refs = []
        for item in node.items:
            ref = _lock_ref(item, cls, is_async)
            if ref is not None:
                refs.append(ref)
        function = self._fn.qualname if self._fn else "<module>"
        for ref in refs:
            self.lock_sites.append(LockSite(lock=ref, function=function, line=node.lineno))
            for held in self.lock_stack:
                self.acquires.append(AcquireEdge(
                    held=held, acquired=ref, function=function, line=node.lineno))
            self.lock_stack.append(ref)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in refs:
            self.lock_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    # -- assignments -------------------------------------------------------
    def _record_self_write(self, attr: str, line: int) -> None:
        fn = self._fn
        cls = self._cls
        if cls is None or fn is None:
            return
        cls["accesses"].append(AttrAccess(
            attr=attr, kind="write", locks=self._sync_locks(),
            method=fn.qualname, line=line))

    def visit_Assign(self, node: ast.Assign) -> None:
        value_ctor = _ctor_name(node.value)
        for target in node.targets:
            dotted = _dotted(target)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "self" and len(parts) == 2 and self._cls is not None:
                attr = parts[1]
                self._record_self_write(attr, node.lineno)
                if value_ctor in _LOCK_CTORS or (value_ctor and "lock" in attr.lower()):
                    self._cls["lock_attrs"].add(attr)
                if value_ctor in RESOURCE_CLASSES:
                    self._cls["resource_attrs"][attr] = value_ctor
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in RESOURCE_PARAM_NAMES
                ):
                    self._cls["resource_attrs"][attr] = f"param:{node.value.id}"
                if value_ctor:
                    self._cls["ctor_attrs"][attr] = value_ctor
            elif len(parts) == 1:
                if self._fn is not None:
                    if value_ctor:
                        self._fn.local_ctors[parts[0]] = value_ctor
                elif not self.class_stack:
                    # module scope: resource singletons
                    if value_ctor in RESOURCE_CLASSES:
                        self.resource_globals[parts[0]] = value_ctor
        self.visit(node.value)
        for target in node.targets:
            self._visit_store_target(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            fake = ast.Assign(targets=[node.target], value=node.value)
            ast.copy_location(fake, node)
            self.visit_Assign(fake)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        dotted = _dotted(node.target)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "self" and len(parts) >= 2:
                self._record_self_write(parts[1], node.lineno)
        self.visit(node.value)
        self._visit_store_target(node.target)

    def _visit_store_target(self, target: ast.expr) -> None:
        # visit subscript/attribute chains inside store targets so reads
        # feeding the store (`self._cache[key] = v` reads `key`) register,
        # without double-recording the written attribute itself.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_store_target(element)
        elif isinstance(target, ast.Subscript):
            # write through a subscript: the base attribute is mutated
            dotted = _dotted(target.value)
            if dotted is not None:
                parts = dotted.split(".")
                if parts[0] == "self" and len(parts) >= 2:
                    self._record_self_write(parts[1], target.lineno)
            self.visit(target.value)
            self.visit(target.slice)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            dotted = _dotted(target.value if isinstance(target, ast.Subscript) else target)
            if dotted is not None:
                parts = dotted.split(".")
                if parts[0] == "self" and len(parts) >= 2:
                    self._record_self_write(parts[1], node.lineno)
        self.generic_visit(node)

    # -- reads -------------------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        fn = self._fn
        if fn is not None and isinstance(node.ctx, ast.Load):
            fn.reads.append((node.id, node.lineno))
            if node.id in fn.seed_params:
                fn.seed_reads.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "self" and len(parts) >= 2 and isinstance(node.ctx, ast.Load):
                fn, cls = self._fn, self._cls
                if fn is not None:
                    fn.self_attr_reads.append((parts[1], node.lineno))
                if cls is not None and fn is not None and len(parts) == 2:
                    cls["accesses"].append(AttrAccess(
                        attr=parts[1], kind="read", locks=self._sync_locks(),
                        method=fn.qualname, line=node.lineno))
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn
        callee = _dotted(node.func)
        if callee is not None:
            last = callee.split(".")[-1]
            parts = callee.split(".")
            # mutator method through self.attr: a write to the attr
            if (
                len(parts) == 3 and parts[0] == "self" and last in _MUTATOR_METHODS
                and self._cls is not None and fn is not None
            ):
                self._record_self_write(parts[1], node.lineno)
            if fn is not None:
                if last in _RNG_CTORS:
                    fn.constructs_rng = True
                arg_names = self._argument_names(node)
                seed_kwargs = tuple(
                    kw.arg for kw in node.keywords
                    if kw.arg is not None and is_seed_name(kw.arg)
                )
                caller_seeds = tuple(
                    p for p in fn.seed_params if p in arg_names
                )
                # the callee target for linking: strip trailing call chains
                target = callee if len(parts) <= 3 else None
                if target is not None:
                    fn.calls.append(CallSite(
                        callee=target, line=node.lineno,
                        n_pos_args=len(node.args),
                        keywords=tuple(kw.arg for kw in node.keywords if kw.arg),
                        has_star=(
                            any(isinstance(a, ast.Starred) for a in node.args)
                            or any(kw.arg is None for kw in node.keywords)
                        ),
                        seed_kwargs=seed_kwargs,
                        caller_seeds_passed=caller_seeds,
                    ))
                for held in self.lock_stack:
                    self.held_calls.append(HeldCall(
                        held=held, callee=callee, function=fn.qualname,
                        line=node.lineno))
            elif self.lock_stack:
                self.held_calls.append(HeldCall(
                    held=self.lock_stack[-1], callee=callee,
                    function="<module>", line=node.lineno))
            self._maybe_dispatch(node, callee)
        self.generic_visit(node)

    @staticmethod
    def _argument_names(node: ast.Call) -> set[str]:
        names: set[str] = set()
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            for inner in ast.walk(arg):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
        return names

    def _maybe_dispatch(self, node: ast.Call, callee: str) -> None:
        parts = callee.split(".")
        last = parts[-1]
        function = self._fn.qualname if self._fn else "<module>"

        def callee_of(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Lambda):
                return f"<lambda:{expr.lineno}>"
            return _dotted(expr)

        # Process(target=fn) — multiprocessing or a context object
        if last == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = callee_of(kw.value)
                    if target:
                        self.dispatches.append(DispatchSite(
                            api="Process(target=)", callee=target,
                            boundary="process", function=function,
                            line=node.lineno))
            return
        if last in _DISPATCH_METHODS and len(parts) >= 2 and node.args:
            target = callee_of(node.args[0])
            if not target:
                return
            receiver = ".".join(parts[:-1])
            boundary = self._receiver_boundary(receiver)
            if boundary is None:
                return
            self.dispatches.append(DispatchSite(
                api=last, callee=target, boundary=boundary,
                function=function, line=node.lineno))

    def _receiver_boundary(self, receiver: str) -> str | None:
        """How hard a process boundary the dispatch receiver is."""
        parts = receiver.split(".")
        ctor: str | None = None
        if parts[0] == "self" and len(parts) == 2 and self._cls is not None:
            ctor = self._cls["ctor_attrs"].get(parts[1])
        elif len(parts) == 1 and self._fn is not None:
            ctor = self._fn.local_ctors.get(parts[0])
        if ctor is None:
            return None
        if ctor == "ProcessPoolExecutor":
            return "process"
        if ctor == "ThreadPoolExecutor":
            return "thread"
        if ctor in ("WorkerPool", "Pool"):
            return "maybe"
        return None


def summarize_module(tree: ast.Module, path: str, module: str | None = None) -> ModuleSummary:
    """Extract the phase-1 summary of one parsed file."""
    extractor = _Extractor(path, module if module is not None else module_name_for(path))
    extractor.visit(tree)
    return ModuleSummary(
        path=extractor.path,
        module=extractor.module,
        import_map=extractor.import_map,
        resource_globals=extractor.resource_globals,
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
        acquires=tuple(extractor.acquires),
        lock_sites=tuple(extractor.lock_sites),
        held_calls=tuple(extractor.held_calls),
        dispatches=tuple(extractor.dispatches),
    )


def iter_accesses(summary: ModuleSummary) -> Iterator[tuple[ClassSummary, AttrAccess]]:
    """Convenience: every (class, access) pair in a module summary."""
    for cls in summary.classes:
        for access in cls.accesses:
            yield cls, access
