"""Seeded infrastructure-fault injection for lossy-testbed simulation.

:mod:`repro.data.faults` injects *performance* faults — the anomalies the
detector is supposed to find. This module injects *infrastructure* faults:
the telemetry path itself misbehaving the way live testbeds do. A
:class:`ChaosProfile` describes the failure climate as independent rates:

- ``drop_rate`` / ``duplicate_rate`` / ``reorder_rate`` — scrape samples
  lost, delivered twice, or delivered out of order;
- ``nan_rate`` — a scrape row arrives with a NaN-poisoned value;
- ``tsdb_failure_rate`` — a TSDB write fails transiently
  (:class:`TransientTSDBError`, retryable);
- ``outage_rate`` — an entire execution's scrape window is lost
  (collector outage → dead-letter);
- ``training_divergence_rate`` — a day's training run receives poisoned
  targets and diverges;
- ``worker_kill_rate`` / ``worker_stall_rate`` — a serving worker
  process dies mid-batch (``os._exit``) or hangs past the supervisor's
  heartbeat timeout. These are drawn per dispatched batch id, so a
  re-dispatched batch (which gets a fresh id) rolls new dice — exactly
  the property that lets the supervisor guarantee forward progress
  under a fixed seed.

Every decision is drawn from an RNG derived via SHA-256 from
``(profile.seed, *key)``, so a given (profile, record/day) pair always
fails the same way — chaos runs are exactly reproducible and independent
of iteration order. Injections are counted in
``repro_chaos_injected_total{kind=...}``; since campaigns self-scrape the
registry, every injected fault is visible in the observability TSDB.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

import numpy as np

from ..obs import get_observability
from .errors import TransientTSDBError

__all__ = ["ChaosProfile", "FlakyTSDB"]

_OBS = get_observability()
_M_INJECTED = _OBS.counter(
    "repro_chaos_injected_total",
    "Infrastructure faults injected by chaos profiles, by kind.",
    labels=("kind",),
)


@dataclass(frozen=True)
class ChaosProfile:
    """An immutable, seeded description of infrastructure-failure rates."""

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    nan_rate: float = 0.0
    tsdb_failure_rate: float = 0.0
    outage_rate: float = 0.0
    training_divergence_rate: float = 0.0
    worker_kill_rate: float = 0.0
    worker_stall_rate: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name == "seed":
                continue
            rate = getattr(self, spec.name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{spec.name} must be in [0, 1]; got {rate}")

    def rng(self, *key: object) -> np.random.Generator:
        """A generator derived deterministically from (seed, \\*key).

        Independent keys give independent streams, so injecting one fault
        kind never shifts the draws of another — rates can be tuned in
        isolation without reshuffling the whole run.
        """
        material = ":".join(str(part) for part in (self.seed, *key)).encode()
        digest = hashlib.sha256(material).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    # -- scrape-path faults ------------------------------------------------
    def corrupt_scrape(
        self, key: str, timestamps: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Corrupt one execution's scrape stream as the network would.

        ``rows`` is the (timesteps, series) value matrix scraped for one
        execution; a whole row (all series at one timestep) is the unit of
        delivery, mirroring one scrape of one target. Returns the
        *delivered* (timestamps, rows): some rows dropped, some duplicated,
        adjacent rows swapped, and individual values NaN-poisoned. The
        caller is expected to sanitize (sort, dedupe, gap-mark) — that
        repair work is the point.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or len(rows) != len(timestamps):
            raise ValueError("rows must be (timesteps, series) aligned with timestamps")
        gen = self.rng("scrape", key)
        order: list[int] = []
        dropped = duplicated = 0
        for i in range(len(timestamps)):
            if self.drop_rate and gen.random() < self.drop_rate:
                dropped += 1
                continue
            order.append(i)
            if self.duplicate_rate and gen.random() < self.duplicate_rate:
                order.append(i)
                duplicated += 1
        swapped = 0
        for j in range(len(order) - 1):
            if self.reorder_rate and gen.random() < self.reorder_rate:
                order[j], order[j + 1] = order[j + 1], order[j]
                swapped += 1
        delivered_t = timestamps[order]
        delivered = rows[order].copy()
        poisoned = 0
        if self.nan_rate:
            for j in range(len(order)):
                if gen.random() < self.nan_rate:
                    delivered[j, int(gen.integers(delivered.shape[1]))] = np.nan
                    poisoned += 1
        if dropped:
            _M_INJECTED.labels(kind="drop").inc(dropped)
        if duplicated:
            _M_INJECTED.labels(kind="duplicate").inc(duplicated)
        if swapped:
            _M_INJECTED.labels(kind="reorder").inc(swapped)
        if poisoned:
            _M_INJECTED.labels(kind="nan").inc(poisoned)
        return delivered_t, delivered

    # -- whole-component faults -------------------------------------------
    def outage(self, key: str) -> bool:
        """Did the collector lose this execution's entire scrape window?"""
        hit = bool(self.outage_rate and self.rng("outage", key).random() < self.outage_rate)
        if hit:
            _M_INJECTED.labels(kind="outage").inc()
        return hit

    def training_diverges(self, day: int) -> bool:
        """Should this day's training run receive poisoned targets?"""
        hit = bool(
            self.training_divergence_rate
            and self.rng("diverge", day).random() < self.training_divergence_rate
        )
        if hit:
            _M_INJECTED.labels(kind="training_divergence").inc()
        return hit

    def worker_kill(self, key: object) -> bool:
        """Should the worker serving this dispatch die mid-batch?

        Keyed by the supervisor's batch id: deterministic for a given
        (seed, id), independent across ids. Counted on the *drawing*
        process — when the worker itself draws, the increment dies with
        it, so the supervisor counts restarts separately.
        """
        hit = bool(
            self.worker_kill_rate
            and self.rng("worker_kill", key).random() < self.worker_kill_rate
        )
        if hit:
            _M_INJECTED.labels(kind="worker_kill").inc()
        return hit

    def worker_stall(self, key: object) -> bool:
        """Should the worker serving this dispatch hang past its heartbeat?"""
        hit = bool(
            self.worker_stall_rate
            and self.rng("worker_stall", key).random() < self.worker_stall_rate
        )
        if hit:
            _M_INJECTED.labels(kind="worker_stall").inc()
        return hit

    def flaky(self, tsdb):
        """Wrap a TSDB so writes fail transiently at ``tsdb_failure_rate``."""
        if not self.tsdb_failure_rate:
            return tsdb
        return FlakyTSDB(tsdb, self)


class FlakyTSDB:
    """Duck-typed TSDB proxy whose writes fail transiently.

    Failures happen *before* the delegate sees the write, so a retried
    attempt never double-writes. Reads and everything else pass through
    untouched. Deliberately not a TimeSeriesDB subclass: the resilience
    package must not import :mod:`repro.workflow` (which imports it).
    """

    def __init__(self, tsdb, profile: ChaosProfile):
        self._tsdb = tsdb
        self._rate = profile.tsdb_failure_rate
        self._rng = profile.rng("tsdb", getattr(tsdb, "name", "tsdb"))
        self.failures_injected = 0

    def _maybe_fail(self, what: str) -> None:
        if self._rng.random() < self._rate:
            self.failures_injected += 1
            _M_INJECTED.labels(kind="tsdb_failure").inc()
            raise TransientTSDBError(f"simulated transient TSDB failure during {what}")

    def write(self, *args, **kwargs):
        self._maybe_fail("write")
        return self._tsdb.write(*args, **kwargs)

    def write_array(self, *args, **kwargs):
        self._maybe_fail("write_array")
        return self._tsdb.write_array(*args, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self._tsdb, name)
