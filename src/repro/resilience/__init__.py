"""Resilience: failure policies, chaos injection, and quarantine.

Live testbeds are lossy — scrapes stall, samples vanish, stores hiccup,
executions die mid-run. This package gives the workflow the vocabulary to
survive that:

- :mod:`~repro.resilience.errors` — the typed failure taxonomy
  (transient vs terminal);
- :mod:`~repro.resilience.policies` — :class:`Retry` (exponential backoff
  + jitter on a simulated clock), :class:`Deadline` budgets, and a
  :class:`CircuitBreaker`, all usable as decorators or context managers
  and all emitting ``repro_resilience_*`` metrics;
- :mod:`~repro.resilience.chaos` — :class:`ChaosProfile`, the seeded
  infrastructure-fault simulator (dropped / duplicated / reordered /
  NaN-poisoned samples, transient TSDB failures, collector outages,
  divergent training days);
- :mod:`~repro.resilience.deadletter` — the :class:`DeadLetterStore`
  where quarantined executions are accounted for.

Import discipline: this package imports only :mod:`repro.obs` (and numpy).
The workflow imports *us*; the reverse edge would be a cycle.
"""

from .chaos import ChaosProfile, FlakyTSDB
from .deadletter import DeadLetterRecord, DeadLetterStore
from .errors import (
    CircuitOpen,
    CollectorOutage,
    DeadlineExceeded,
    ExecutionQuarantined,
    ResilienceError,
    RetryExhausted,
    TransientError,
    TransientTSDBError,
)
from .policies import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Clock,
    Deadline,
    MonotonicClock,
    Retry,
    SimulatedClock,
)

__all__ = [
    # errors
    "ResilienceError",
    "TransientError",
    "TransientTSDBError",
    "CollectorOutage",
    "ExecutionQuarantined",
    "CircuitOpen",
    "DeadlineExceeded",
    "RetryExhausted",
    # policies
    "Clock",
    "MonotonicClock",
    "SimulatedClock",
    "Retry",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    # chaos
    "ChaosProfile",
    "FlakyTSDB",
    # quarantine
    "DeadLetterRecord",
    "DeadLetterStore",
]
