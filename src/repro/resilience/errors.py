"""Typed failure taxonomy for the resilience layer.

Every failure the chaos layer injects — and every failure a live testbed
produces — maps to one of these types, so call sites can distinguish
*transient* conditions (worth retrying) from *terminal* ones (worth
quarantining) without string-matching messages:

- :class:`TransientError` and subclasses: the operation may succeed if
  repeated — :class:`Retry` policies only ever retry these by default.
- :class:`CollectorOutage`: a whole execution's scrape window was lost;
  nothing to retry, the execution goes to the dead-letter store.
- :class:`ExecutionQuarantined`: degraded telemetry crossed the
  degradation ladder's floor (e.g. a gap too long to impute) — the
  execution is excluded from monitoring *and* training.
- :class:`CircuitOpen` / :class:`DeadlineExceeded` / :class:`RetryExhausted`:
  raised by the policies themselves when a budget runs out.

:class:`~repro.nn.training.TrainingDiverged` (raised by the Trainer's
NaN/Inf loss guard) and :class:`~repro.workflow.model_store.CorruptModelError`
live next to the code that raises them; they are part of the same taxonomy
but are defined downstream to keep this package free of heavyweight
imports.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "TransientError",
    "TransientTSDBError",
    "CollectorOutage",
    "ExecutionQuarantined",
    "CircuitOpen",
    "DeadlineExceeded",
    "RetryExhausted",
]


class ResilienceError(RuntimeError):
    """Base class for every failure the resilience layer models."""


class TransientError(ResilienceError):
    """A failure that may clear on retry (network blip, busy backend)."""


class TransientTSDBError(TransientError):
    """A TSDB write/query failed transiently (simulated Prometheus hiccup)."""


class CollectorOutage(ResilienceError):
    """The metric collector lost an entire execution's scrape window."""


class ExecutionQuarantined(ResilienceError):
    """Telemetry too degraded to monitor or train on; dead-letter it.

    ``reason`` is a short machine-readable slug (``gap_too_long``,
    ``series_missing``, ...) mirrored into the dead-letter record.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


class CircuitOpen(ResilienceError):
    """A circuit breaker is open; the protected call was not attempted."""


class DeadlineExceeded(ResilienceError):
    """A deadline-scoped block ran past its time budget."""


class RetryExhausted(ResilienceError):
    """A retry policy ran out of attempts; ``__cause__`` is the last error."""
