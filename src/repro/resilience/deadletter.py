"""Dead-letter store: where un-processable work goes to be accounted for.

When the degradation ladder bottoms out — a collector outage loses a whole
scrape window, a gap is too long to impute, the TSDB stays down past the
retry budget — the execution is *quarantined*: excluded from monitoring
and training, but never silently discarded. Every quarantined unit lands
here with a machine-readable reason, so a campaign can assert that
``scheduled == processed + quarantined`` and an engineer can replay the
dead letters once the infrastructure recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_observability

__all__ = ["DeadLetterRecord", "DeadLetterStore"]

_OBS = get_observability()
_M_DEAD_LETTERS = _OBS.counter(
    "repro_resilience_dead_letters_total",
    "Work units quarantined to a dead-letter store, by reason.",
    labels=("reason",),
)
_G_SIZE = _OBS.gauge(
    "repro_resilience_dead_letter_size",
    "Records currently held in a dead-letter store.",
)


@dataclass(frozen=True)
class DeadLetterRecord:
    """One quarantined work unit and why it could not be processed."""

    key: str
    reason: str
    detail: str = ""
    day: int | None = None


class DeadLetterStore:
    """In-memory quarantine keyed by an arbitrary string (e.g. an EM id)."""

    def __init__(self) -> None:
        self._records: dict[str, DeadLetterRecord] = {}

    def add(self, key: str, reason: str, detail: str = "", day: int | None = None) -> DeadLetterRecord:
        """Quarantine one unit; re-adding a key overwrites its record."""
        if not key:
            raise ValueError("dead-letter key must be non-empty")
        if not reason:
            raise ValueError("dead-letter reason must be non-empty")
        record = DeadLetterRecord(key=key, reason=reason, detail=detail, day=day)
        self._records[key] = record
        _M_DEAD_LETTERS.labels(reason=reason).inc()
        _G_SIZE.set(len(self._records))
        return record

    def restore(self, records: list[DeadLetterRecord]) -> None:
        """Reload checkpointed records without re-counting quarantines."""
        for record in records:
            self._records[record.key] = record
        _G_SIZE.set(len(self._records))

    def get(self, key: str) -> DeadLetterRecord:
        return self._records[key]

    def records(self, reason: str | None = None) -> list[DeadLetterRecord]:
        """All records (insertion order), optionally filtered by reason."""
        out = list(self._records.values())
        if reason is not None:
            out = [record for record in out if record.reason == reason]
        return out

    def reasons(self) -> dict[str, int]:
        """Histogram of quarantine reasons."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)
