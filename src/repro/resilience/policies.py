"""Resilience policies: retry with backoff, deadlines, circuit breakers.

The workflow talks to lossy infrastructure (scrapes stall, TSDB writes
fail transiently, test executions die mid-run), so every cross-component
call can be wrapped in a policy:

- :class:`Retry` — bounded attempts with exponential backoff + decorrelated
  jitter. Backoff sleeps go through a :class:`Clock`, and the default is
  the :class:`SimulatedClock`: deterministic, instantaneous, and metered —
  a campaign that retries thousands of times still runs in milliseconds,
  while ``repro_resilience_backoff_seconds_total`` records how long a real
  deployment would have waited.
- :class:`Deadline` — a wall-clock (or simulated) time budget over a block,
  with cooperative :meth:`Deadline.check` for long loops.
- :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine: after ``failure_threshold`` consecutive failures the circuit
  opens and calls fail fast with :class:`CircuitOpen`; after
  ``recovery_time`` one trial call probes the backend (half-open) and
  either closes the circuit or re-opens it.

All three work as decorators *and* as context managers (``Retry`` in its
iterator form, since a failed ``with`` block cannot be re-entered)::

    retry = Retry(max_attempts=4, name="tsdb-write")

    @retry
    def write():
        tsdb.write_array(...)

    for attempt in retry.attempts():     # context-manager form
        with attempt:
            tsdb.write_array(...)

    with CircuitBreaker(name="model-store") as breaker:  # one guarded call
        store.fetch_latest()

Every decision is observable: ``repro_resilience_retries_total``,
``repro_resilience_giveups_total``, ``repro_resilience_backoff_seconds_total``
(all labelled ``policy``), ``repro_resilience_deadline_exceeded_total``,
``repro_resilience_breaker_state`` and
``repro_resilience_breaker_transitions_total`` — scraped into the campaign
TSDB alongside everything else in :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

import numpy as np

from ..obs import get_observability
from .errors import CircuitOpen, DeadlineExceeded, RetryExhausted, TransientError

__all__ = [
    "Clock",
    "MonotonicClock",
    "SimulatedClock",
    "Retry",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

_OBS = get_observability()
_M_RETRIES = _OBS.counter(
    "repro_resilience_retries_total",
    "Retried attempts (attempt 2+) made by retry policies.",
    labels=("policy",),
)
_M_GIVEUPS = _OBS.counter(
    "repro_resilience_giveups_total",
    "Retry policies that exhausted their attempt budget.",
    labels=("policy",),
)
_M_BACKOFF = _OBS.counter(
    "repro_resilience_backoff_seconds_total",
    "Total (simulated) seconds spent backing off between retry attempts.",
    labels=("policy",),
)
_M_DEADLINES = _OBS.counter(
    "repro_resilience_deadline_exceeded_total",
    "Blocks that ran past their deadline budget.",
    labels=("policy",),
)
_G_BREAKER_STATE = _OBS.gauge(
    "repro_resilience_breaker_state",
    "Circuit breaker state (0=closed, 1=half-open, 2=open).",
    labels=("breaker",),
)
_M_BREAKER_TRANSITIONS = _OBS.counter(
    "repro_resilience_breaker_transitions_total",
    "Circuit breaker state transitions.",
    labels=("breaker", "to"),
)
_M_BREAKER_REJECTED = _OBS.counter(
    "repro_resilience_breaker_rejected_total",
    "Calls rejected fast because the circuit was open.",
    labels=("breaker",),
)


class Clock:
    """Minimal clock interface: ``now()`` seconds and ``sleep(seconds)``."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real wall-clock time; sleeps actually block (production mode)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """A deterministic clock whose sleeps advance time instantaneously.

    The default for every policy in this repo: campaigns replay simulated
    days, so backoff must consume *simulated* seconds, not wall-clock.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without it counting as a backoff sleep."""
        self.sleep(seconds)


class _Attempt:
    """One try in :meth:`Retry.attempts`; swallows retryable failures."""

    __slots__ = ("_retry", "_state", "number")

    def __init__(self, retry: "Retry", state: dict, number: int):
        self._retry = retry
        self._state = state
        self.number = number

    def __enter__(self) -> "_Attempt":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._state["done"] = True
            return False
        if not isinstance(exc, self._retry.retry_on):
            return False
        self._state["last_error"] = exc
        if self.number >= self._retry.max_attempts:
            return False  # let the final failure propagate via attempts()
        self._retry._backoff(self.number)
        return True  # swallow and let the loop hand out the next attempt


class Retry:
    """Bounded retry with exponential backoff and decorrelated jitter.

    Only exceptions matching ``retry_on`` (default: :class:`TransientError`)
    are retried; anything else propagates immediately. When the budget is
    exhausted the *original* exception type propagates (the last failure),
    wrapped semantics preserved via ``raise ... from`` under
    :class:`RetryExhausted` only in :meth:`call`'s give-up path.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.5,
        max_delay: float = 60.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        retry_on: tuple[type[BaseException], ...] = (TransientError,),
        clock: Clock | None = None,
        seed: int = 0,
        name: str = "retry",
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.retry_on = retry_on
        self.clock = clock if clock is not None else SimulatedClock()
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._m_retries = _M_RETRIES.labels(policy=name)
        self._m_giveups = _M_GIVEUPS.labels(policy=name)
        self._m_backoff = _M_BACKOFF.labels(policy=name)

    def delay_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts count from 1)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 - self.jitter * float(self._rng.random())
        return raw

    def _backoff(self, attempt: int) -> None:
        self._m_retries.inc()
        delay = self.delay_for(attempt)
        self._m_backoff.inc(delay)
        self.clock.sleep(delay)

    def call(self, fn: Callable, *args, **kwargs):
        """Invoke ``fn`` under this policy, returning its result.

        The first attempt runs span-free: a policy wrapped around every
        TSDB write must cost nothing when the write simply succeeds. Only
        once a retryable failure starts an actual retry loop does the
        ``resilience.retry.<name>`` span open (covering attempts 2+).
        """
        try:
            return fn(*args, **kwargs)
        except self.retry_on as exc:
            last_error: BaseException = exc
        if self.max_attempts > 1:
            with _OBS.span(f"resilience.retry.{self.name}"):
                for attempt in range(1, self.max_attempts):
                    self._backoff(attempt)
                    try:
                        return fn(*args, **kwargs)
                    except self.retry_on as exc:
                        last_error = exc
        self._m_giveups.inc()
        raise RetryExhausted(
            f"policy {self.name!r} gave up after {self.max_attempts} attempts"
        ) from last_error

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: ``@Retry(...)``."""

        def wrapped(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        wrapped.__wrapped__ = fn
        return wrapped

    def attempts(self) -> Iterator[_Attempt]:
        """Context-manager form: iterate attempts, ``with`` each one.

        The loop ends as soon as an attempt's block completes without a
        retryable exception; when the budget is exhausted the last failure
        propagates out of the final ``with`` block.
        """
        state: dict = {"done": False, "last_error": None}
        for number in range(1, self.max_attempts + 1):
            if state["done"]:
                return
            yield _Attempt(self, state, number)
        if not state["done"] and state["last_error"] is not None:
            self._m_giveups.inc()


class Deadline:
    """A time budget over a block of work (context manager + decorator).

    On normal exit past the budget, :class:`DeadlineExceeded` is raised
    (an in-flight exception always takes precedence). Long-running loops
    should call :meth:`check` cooperatively to abort mid-block.
    """

    def __init__(self, seconds: float, clock: Clock | None = None, name: str = "deadline"):
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = float(seconds)
        self.clock = clock if clock is not None else MonotonicClock()
        self.name = name
        self._started_at: float | None = None
        self._m_exceeded = _M_DEADLINES.labels(policy=name)

    def __enter__(self) -> "Deadline":
        self._started_at = self.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        started, self._started_at = self._started_at, None
        if exc_type is None and started is not None:
            elapsed = self.clock.now() - started
            if elapsed > self.seconds:
                self._m_exceeded.inc()
                raise DeadlineExceeded(
                    f"{self.name}: block took {elapsed:.3f}s, budget was {self.seconds:.3f}s"
                )
        return False

    def remaining(self) -> float:
        """Seconds left in the budget (0 when expired or not entered)."""
        if self._started_at is None:
            return self.seconds
        return max(0.0, self.seconds - (self.clock.now() - self._started_at))

    def check(self) -> None:
        """Cooperative cancellation point for loops inside the block."""
        if self._started_at is None:
            return
        if self.clock.now() - self._started_at > self.seconds:
            self._m_exceeded.inc()
            raise DeadlineExceeded(f"{self.name}: budget of {self.seconds:.3f}s exhausted")

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: each call gets a fresh budget."""

        def wrapped(*args, **kwargs):
            with Deadline(self.seconds, clock=self.clock, name=self.name):
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__wrapped__ = fn
        return wrapped


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

_STATE_VALUES = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0, BREAKER_OPEN: 2.0}


class CircuitBreaker:
    """Closed → open → half-open breaker around a flaky dependency.

    ``failure_threshold`` *consecutive* failures open the circuit; while
    open, :meth:`allow` (and the context-manager form) fail fast with
    :class:`CircuitOpen`. After ``recovery_time`` (on the breaker's clock)
    the next call runs as a half-open trial: success closes the circuit,
    failure re-opens it and restarts the recovery timer.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock: Clock | None = None,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.clock = clock if clock is not None else SimulatedClock()
        self.name = name
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._g_state = _G_BREAKER_STATE.labels(breaker=name)
        self._m_transitions = _M_BREAKER_TRANSITIONS.labels(breaker=name, to="")
        self._m_rejected = _M_BREAKER_REJECTED.labels(breaker=name)
        self._g_state.set(_STATE_VALUES[self.state])

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self._g_state.set(_STATE_VALUES[state])
        _M_BREAKER_TRANSITIONS.labels(breaker=self.name, to=state).inc()

    def allow(self) -> None:
        """Gate a call: raises :class:`CircuitOpen` while the circuit is open."""
        if self.state == BREAKER_OPEN:
            if self.clock.now() - self._opened_at >= self.recovery_time:
                self._transition(BREAKER_HALF_OPEN)
            else:
                self._m_rejected.inc()
                raise CircuitOpen(
                    f"breaker {self.name!r} is open "
                    f"({self.consecutive_failures} consecutive failures)"
                )

    def retry_after(self) -> float:
        """Seconds (on the breaker's clock) until the next half-open trial.

        ``0.0`` whenever the breaker is not open — callers can always use
        this to stamp a hint onto fail-fast responses without inspecting
        :attr:`state` first.
        """
        if self.state != BREAKER_OPEN:
            return 0.0
        return max(0.0, self.recovery_time - (self.clock.now() - self._opened_at))

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self._opened_at = self.clock.now()
            self._transition(BREAKER_OPEN)

    def __enter__(self) -> "CircuitBreaker":
        self.allow()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.record_success()
        elif not issubclass(exc_type, CircuitOpen):
            self.record_failure()
        return False

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: every call is gated and recorded."""

        def wrapped(*args, **kwargs):
            self.allow()
            try:
                result = fn(*args, **kwargs)
            except CircuitOpen:
                raise
            except BaseException:
                self.record_failure()
                raise
            self.record_success()
            return result

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__wrapped__ = fn
        return wrapped
