"""Random forest regressor (``RFReg`` in §4.1.3).

Bagged CART trees with per-node feature subsampling; predictions are the
mean over trees. The paper searches ``max_depth`` over {3, 4, ..., 10} and
``n_estimators`` over {10, 50, 100, 1000}; those grids are exported as
constants for the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, check_X, check_X_y
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "PAPER_RF_MAX_DEPTHS", "PAPER_RF_N_ESTIMATORS"]

#: §4.1.3 hyper-parameter grids for RFReg.
PAPER_RF_MAX_DEPTHS = tuple(range(3, 11))
PAPER_RF_N_ESTIMATORS = (10, 50, 100, 1000)


class RandomForestRegressor(Estimator):
    """An ensemble of bootstrap-trained regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n = len(y)
        self.trees_ = []
        self._oob_predictions = np.zeros(n)
        self._oob_counts = np.zeros(n)
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
                oob_mask = np.ones(n, dtype=bool)
                oob_mask[np.unique(idx)] = False
                if oob_mask.any():
                    self._oob_predictions[oob_mask] += tree.predict(X[oob_mask])
                    self._oob_counts[oob_mask] += 1
            else:
                tree.fit(X, y)
            self.trees_.append(tree)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        total = np.zeros(len(X), dtype=np.float64)
        for tree in self.trees_:
            total += tree.predict(X)
        return total / len(self.trees_)

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-based importances over the ensemble's trees."""
        self._require_fitted()
        stacked = np.stack([tree.feature_importances() for tree in self.trees_])
        return stacked.mean(axis=0)

    def oob_score(self, y) -> float:
        """Out-of-bag negative MSE over samples with at least one OOB vote."""
        self._require_fitted()
        if not self.bootstrap:
            raise RuntimeError("OOB score requires bootstrap=True")
        y = np.asarray(y, dtype=np.float64)
        mask = self._oob_counts > 0
        if not mask.any():
            raise RuntimeError("no out-of-bag samples recorded")
        predictions = self._oob_predictions[mask] / self._oob_counts[mask]
        return -float(np.mean((predictions - y[mask]) ** 2))
