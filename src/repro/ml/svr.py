"""Epsilon-insensitive support vector regression (SVR baseline, §4.1.3 / [21]).

scikit-learn's libsvm-backed SVR is unavailable offline, so the estimator is
implemented via the representer theorem: the regression function is
``f(x) = Σ_i beta_i K(x_i, x) + b`` and we minimize the kernelized primal

    (alpha / 2) * beta^T K beta  +  mean_i L_eps(f(x_i) - y_i)

where ``L_eps`` is a *smoothed* epsilon-insensitive loss (quadratically
rounded at the hinge corners so L-BFGS converges; the smoothing width is
much smaller than any epsilon in the paper's grid {0.1..1.0}). The
hyper-parameters match the paper: regularization ``alpha``
({0.001..1000}), ``kernel`` in {linear, poly, rbf}, and tolerance margin
``epsilon`` ({0.1, 0.2, ..., 1.0}).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .base import Estimator, check_X, check_X_y

__all__ = ["SVR", "PAPER_SVR_ALPHAS", "PAPER_SVR_KERNELS", "PAPER_SVR_EPSILONS"]

#: §4.1.3 hyper-parameter grids for the SVR baseline.
PAPER_SVR_ALPHAS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)
PAPER_SVR_KERNELS = ("linear", "poly", "rbf")
PAPER_SVR_EPSILONS = tuple(round(0.1 * i, 1) for i in range(1, 11))


def _kernel_matrix(kernel: str, A: np.ndarray, B: np.ndarray, gamma: float, degree: int) -> np.ndarray:
    if kernel == "linear":
        return A @ B.T
    if kernel == "poly":
        return (gamma * (A @ B.T) + 1.0) ** degree
    if kernel == "rbf":
        sq = (
            np.sum(A**2, axis=1)[:, None]
            + np.sum(B**2, axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        return np.exp(-gamma * np.maximum(sq, 0.0))
    raise ValueError(f"unknown kernel {kernel!r}; choose from {PAPER_SVR_KERNELS}")


def _smooth_eps_loss(residual: np.ndarray, epsilon: float, mu: float) -> tuple[np.ndarray, np.ndarray]:
    """Smoothed epsilon-insensitive loss and its derivative w.r.t. residual.

    Zero inside |r| <= eps; linear with slope ±1 outside eps + mu; a
    quadratic bridge of width mu in between keeps the gradient continuous.
    """
    excess = np.abs(residual) - epsilon
    sign = np.sign(residual)
    loss = np.zeros_like(residual)
    grad = np.zeros_like(residual)
    quad = (excess > 0) & (excess <= mu)
    lin = excess > mu
    loss[quad] = excess[quad] ** 2 / (2.0 * mu)
    grad[quad] = sign[quad] * excess[quad] / mu
    loss[lin] = excess[lin] - mu / 2.0
    grad[lin] = sign[lin]
    return loss, grad


class SVR(Estimator):
    """Kernel SVR trained with L-BFGS on the smoothed primal."""

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: str = "rbf",
        epsilon: float = 0.1,
        gamma: float | str = "scale",
        degree: int = 3,
        max_iter: int = 200,
        smoothing: float = 1e-3,
    ):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if kernel not in PAPER_SVR_KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; choose from {PAPER_SVR_KERNELS}")
        self.alpha = alpha
        self.kernel = kernel
        self.epsilon = epsilon
        self.gamma = gamma
        self.degree = degree
        self.max_iter = max_iter
        self.smoothing = smoothing
        self.beta_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._X_train: np.ndarray | None = None

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    def fit(self, X, y) -> "SVR":
        X, y = check_X_y(X, y)
        self._X_train = X
        self._gamma = self._resolve_gamma(X)
        K = _kernel_matrix(self.kernel, X, X, self._gamma, self.degree)
        n = len(y)
        mu = self.smoothing

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            beta, b = params[:n], params[n]
            f = K @ beta + b
            loss, dloss = _smooth_eps_loss(f - y, self.epsilon, mu)
            reg = 0.5 * self.alpha * beta @ K @ beta
            value = float(loss.mean() + reg)
            grad_beta = K @ (dloss / n) + self.alpha * (K @ beta)
            grad_b = float(dloss.mean())
            return value, np.concatenate([grad_beta, [grad_b]])

        start = np.zeros(n + 1)
        start[n] = y.mean()
        result = optimize.minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.beta_ = result.x[:n]
        self.intercept_ = float(result.x[n])
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        if X.shape[1] != self._X_train.shape[1]:
            raise ValueError(f"expected {self._X_train.shape[1]} features, got {X.shape[1]}")
        K = _kernel_matrix(self.kernel, X, self._X_train, self._gamma, self.degree)
        return K @ self.beta_ + self.intercept_

    def support_fraction(self, threshold: float = 1e-6) -> float:
        """Fraction of training points with non-negligible dual weight."""
        self._require_fitted()
        return float(np.mean(np.abs(self.beta_) > threshold))
