"""Estimator protocol shared by the classical ML models.

This mirrors the small slice of the scikit-learn API the paper relies on
(§4.1.3 uses scikit-learn's Ridge, RandomForestRegressor and SVR):
``fit(X, y)``, ``predict(X)``, ``get_params()``/``set_params()`` so the
grid-search in :mod:`repro.ml.model_selection` can clone estimators, and a
default ``score`` (negative MSE, so that higher is better).
"""

from __future__ import annotations

import copy
import inspect

import numpy as np

__all__ = ["Estimator", "clone", "check_X_y", "check_X"]


def check_X(X) -> np.ndarray:
    """Validate a 2-d float feature matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional; got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains NaN or infinite values")
    return X


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and its 1-d target vector together."""
    X = check_X(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional; got shape {y.shape}")
    if len(X) != len(y):
        raise ValueError(f"X and y disagree on length: {len(X)} vs {len(y)}")
    if len(X) == 0:
        raise ValueError("cannot fit on empty data")
    if not np.isfinite(y).all():
        raise ValueError("y contains NaN or infinite values")
    return X, y


class Estimator:
    """Base class for regressors with sklearn-style parameter handling."""

    _fitted: bool = False

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [name for name in signature.parameters if name != "self"]

    def get_params(self) -> dict:
        """Constructor arguments as a dict (for cloning/grid search)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "Estimator":
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"unknown parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def clone(self) -> "Estimator":
        """A fresh, unfitted copy with identical constructor parameters."""
        return type(self)(**copy.deepcopy(self.get_params()))

    def fit(self, X, y, **fit_params) -> "Estimator":  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, X, **predict_params) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def score(self, X, y, **predict_params) -> float:
        """Negative mean squared error (higher is better).

        Extra keyword arguments are forwarded to ``predict`` so estimators
        with side inputs (e.g. ``RidgeTS(history=...)``) score through the
        same code path as plain ones.
        """
        y = np.asarray(y, dtype=np.float64)
        predicted = self.predict(X, **predict_params)
        return -float(np.mean((predicted - y) ** 2))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")


def clone(estimator: Estimator) -> Estimator:
    """A fresh, unfitted copy with identical constructor parameters."""
    return estimator.clone()
