"""Feature preprocessing: scalers and categorical label encoding.

The prediction pipeline (paper Figure 2, step 3) standardizes contextual
features before they reach the FNN, and encodes EM strings such as
``Testbed_15`` or ``Build_s10`` into integer ids for the embedding lookup
tables (with an explicit *unknown* id for values absent from training,
§3.1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "LabelEncoder"]


class StandardScaler:
    """Standardize features to zero mean, unit variance (per column)."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("StandardScaler expects a 2-d matrix")
        if len(X) == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns scale to zero after centering; avoid dividing by 0.
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[-1] != self.mean_.shape[0]:
            raise ValueError(f"expected {self.mean_.shape[0]} features, got {X.shape[-1]}")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into [0, 1] per column (constant columns map to 0)."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-d matrix")
        if len(X) == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[-1] != self.min_.shape[0]:
            raise ValueError(f"expected {self.min_.shape[0]} features, got {X.shape[-1]}")
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.range_ + self.min_


class LabelEncoder:
    """Map string labels to integer ids, reserving an id for unknowns.

    Ids ``0 .. n_classes-1`` index the values seen in ``fit``; the id
    ``n_classes`` (== :attr:`unknown_id`) is returned for any value not seen
    during fitting — mirroring the unknown-embedding row of §3.1.
    """

    def __init__(self):
        self.classes_: list[str] | None = None
        self._index: dict[str, int] = {}

    def fit(self, values) -> "LabelEncoder":
        seen: dict[str, None] = {}
        for value in values:
            seen.setdefault(str(value))
        self.classes_ = sorted(seen)
        self._index = {value: i for i, value in enumerate(self.classes_)}
        return self

    @classmethod
    def from_classes(cls, classes: list[str]) -> "LabelEncoder":
        """Rebuild a fitted encoder from a stored class list (deserialization)."""
        if len(classes) != len(set(classes)):
            raise ValueError("classes must be unique")
        encoder = cls()
        encoder.classes_ = list(classes)
        encoder._index = {value: i for i, value in enumerate(encoder.classes_)}
        return encoder

    def extend(self, values) -> list[str]:
        """Append previously unseen values as new classes.

        Existing ids stay stable; new values get the next ids in first-seen
        order (the unknown id shifts up accordingly). Returns the list of
        newly added classes. Used for incremental model retraining when new
        environments appear (§4.3).
        """
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        added: list[str] = []
        for value in values:
            value = str(value)
            if value not in self._index:
                self._index[value] = len(self.classes_)
                self.classes_.append(value)
                added.append(value)
        return added

    @property
    def unknown_id(self) -> int:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        return len(self.classes_)

    @property
    def vocabulary_size(self) -> int:
        """Number of ids including the unknown slot."""
        return self.unknown_id + 1

    def transform(self, values) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        unknown = self.unknown_id
        return np.array([self._index.get(str(v), unknown) for v in values], dtype=np.int64)

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, ids) -> list[str]:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        out = []
        for i in np.asarray(ids, dtype=np.int64):
            if i == self.unknown_id:
                out.append("<unk>")
            elif 0 <= i < len(self.classes_):
                out.append(self.classes_[i])
            else:
                raise ValueError(f"id {i} out of range")
        return out
