"""Ridge regression and the paper's ``Ridge_ts`` variant.

``Ridge`` is the baseline of §4.1.3: linear least squares with L2
regularization on the coefficient vector (the intercept is not penalized),
solved in closed form. The paper searches the regularization strength
``alpha`` over {0.001, 0.1, ..., 1000} on a validation set.

``RidgeTS`` augments the feature set with the ``n`` previous
resource-utilization values — the same inputs Env2Vec's GRU consumes — so
the comparison isolates model *complexity* rather than information
(paper: "the set of features used in Ridge(ts) are the same than for
Env2Vec but the complexity is different").
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, check_X, check_X_y

__all__ = ["Ridge", "LinearRegression", "RidgeTS", "PAPER_RIDGE_ALPHAS"]

#: §4.1.3 hyper-parameter grid for the Ridge baselines.
PAPER_RIDGE_ALPHAS = (0.001, 0.1, 1.0, 10.0, 100.0, 1000.0)


class Ridge(Estimator):
    """Closed-form ridge regression: ``min ||Xw + b - y||^2 + alpha ||w||^2``."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        X, y = check_X_y(X, y)
        # Center so the intercept absorbs the means and is not penalized.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        # lstsq-style solve is robust to (near-)singular grams at alpha=0.
        self.coef_ = np.linalg.solve(gram + 1e-12 * np.eye(n_features), Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(f"expected {self.coef_.shape[0]} features, got {X.shape[1]}")
        return X @ self.coef_ + self.intercept_


class LinearRegression(Ridge):
    """Ordinary least squares — Ridge with ``alpha = 0``.

    Used to reproduce Figure 1: per-build-chain linear models whose
    coefficients vary wildly across environments.
    """

    def __init__(self):
        super().__init__(alpha=0.0)


class RidgeTS(Estimator):
    """Ridge over [current contextual features ‖ n previous RU values].

    ``fit``/``predict`` take the contextual feature matrix plus a separate
    ``history`` matrix of shape ``(n_samples, n_lags)`` holding
    ``y_{p-1}, ..., y_{p-n}``; the two are concatenated into one design
    matrix for a plain ridge solve.
    """

    def __init__(self, alpha: float = 1.0, n_lags: int = 1):
        if n_lags < 1:
            raise ValueError("n_lags must be >= 1")
        self.alpha = alpha
        self.n_lags = n_lags
        self._ridge = Ridge(alpha=alpha)

    def fit(self, X, y, history: np.ndarray | None = None) -> "RidgeTS":
        design = self._design(X, history)
        self._ridge = Ridge(alpha=self.alpha).fit(design, y)
        self._fitted = True
        return self

    def predict(self, X, history: np.ndarray | None = None) -> np.ndarray:
        self._require_fitted()
        return self._ridge.predict(self._design(X, history))

    @property
    def coef_(self) -> np.ndarray:
        self._require_fitted()
        return self._ridge.coef_

    @property
    def intercept_(self) -> float:
        self._require_fitted()
        return self._ridge.intercept_

    def _design(self, X, history: np.ndarray | None) -> np.ndarray:
        X = check_X(X)
        if history is None:
            raise ValueError("RidgeTS requires a history matrix of previous RU values")
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 2 or history.shape[1] != self.n_lags:
            raise ValueError(f"history must have shape (n_samples, {self.n_lags}); got {history.shape}")
        if len(history) != len(X):
            raise ValueError("history and X disagree on length")
        return np.concatenate([X, history], axis=1)
