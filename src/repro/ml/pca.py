"""Principal component analysis via SVD.

Used by the Figure 6 reproduction: the concatenated environment embeddings
learned by Env2Vec are projected to 2-d with PCA to reveal clustering by
build type ("the dimensionality has been reduced to 2-dimensional space
using principal component analysis", §4.3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Exact PCA on centered data via singular value decomposition."""

    def __init__(self, n_components: int = 2):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("PCA expects a 2-d matrix")
        n, d = X.shape
        if self.n_components > min(n, d):
            raise ValueError(f"n_components={self.n_components} exceeds min(n, d)={min(n, d)}")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variance = singular_values**2 / max(n - 1, 1)
        total = variance.sum()
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = variance[: self.n_components]
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def transform(self, X) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        return np.asarray(Z, dtype=np.float64) @ self.components_ + self.mean_
