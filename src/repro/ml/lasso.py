"""L1-regularized linear regression via cyclic coordinate descent.

A sparse complement to :class:`repro.ml.ridge.Ridge`: the Figure 1 heatmap
shows per-chain linear models assigning *zero* weight to many contextual
features ("White cells have zero weight, which means that either the
metric was unavailable on that testbed, or that it was not deemed
important by the model"). Ridge never produces exact zeros; Lasso does, so
it reproduces the sparse-weights reading of Figure 1 directly and doubles
as a feature selector.

The solver is standard cyclic coordinate descent with soft-thresholding on
centered data (the intercept is not penalized).
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, check_X, check_X_y

__all__ = ["Lasso"]


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class Lasso(Estimator):
    """``min (1/2n) ||Xw + b - y||^2 + alpha ||w||_1``."""

    def __init__(self, alpha: float = 1.0, max_iter: int = 1000, tol: float = 1e-6):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "Lasso":
        X, y = check_X_y(X, y)
        n, d = X.shape
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        # Precompute column norms; constant columns stay at zero weight.
        col_sq = (Xc**2).sum(axis=0)
        w = np.zeros(d)
        residual = yc.copy()  # residual = yc - Xc @ w, maintained incrementally
        threshold = self.alpha * n
        for iteration in range(1, self.max_iter + 1):
            max_delta = 0.0
            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                column = Xc[:, j]
                rho = column @ residual + col_sq[j] * w[j]
                new_w = _soft_threshold(rho, threshold) / col_sq[j]
                delta = new_w - w[j]
                if delta != 0.0:
                    residual -= delta * column
                    w[j] = new_w
                    max_delta = max(max_delta, abs(delta))
            if max_delta < self.tol:
                break
        self.n_iter_ = iteration
        self.coef_ = w
        self.intercept_ = float(y_mean - x_mean @ w)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(f"expected {self.coef_.shape[0]} features, got {X.shape[1]}")
        return X @ self.coef_ + self.intercept_

    def sparsity(self, threshold: float = 1e-12) -> float:
        """Fraction of exactly-zero coefficients."""
        self._require_fitted()
        return float(np.mean(np.abs(self.coef_) <= threshold))

    def selected_features(self, threshold: float = 1e-12) -> np.ndarray:
        """Indices of features with non-zero weight."""
        self._require_fitted()
        return np.flatnonzero(np.abs(self.coef_) > threshold)
