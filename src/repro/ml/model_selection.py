"""Hyper-parameter search and data-splitting utilities.

The paper (§4.1.1) uses a fixed train/validation/test split per dataset and
tunes every method's hyper-parameters on the validation set, so the central
tool here is :class:`ValidationGridSearch` — exhaustive search scored on an
explicit validation set (not cross-validation). ``KFold`` and
``train_val_test_split`` are provided for general use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from .base import Estimator, clone

__all__ = ["ParameterGrid", "ValidationGridSearch", "KFold", "train_val_test_split"]


class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid dict."""

    def __init__(self, grid: Mapping[str, Sequence]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for key, values in grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(f"grid values for {key!r} must be a list/tuple")
            if len(values) == 0:
                raise ValueError(f"grid values for {key!r} must not be empty")
        self.grid = dict(grid)

    def __iter__(self) -> Iterator[dict]:
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[key] for key in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        length = 1
        for values in self.grid.values():
            length *= len(values)
        return length


@dataclass
class ValidationGridSearch:
    """Exhaustive grid search scored on a held-out validation set.

    Each candidate clones ``estimator``, sets the candidate parameters, fits
    on the training data, and scores on the validation data via the
    estimator's ``score`` (negative MSE — higher is better).
    """

    estimator: Estimator
    grid: Mapping[str, Sequence]
    best_params_: dict | None = field(default=None, init=False)
    best_score_: float = field(default=-np.inf, init=False)
    best_estimator_: Estimator | None = field(default=None, init=False)
    results_: list[tuple[dict, float]] = field(default_factory=list, init=False)

    def fit(
        self,
        X_train,
        y_train,
        X_val,
        y_val,
        fit_kwargs: Mapping | None = None,
        score_kwargs: Mapping | None = None,
    ) -> "ValidationGridSearch":
        """Search the grid. ``fit_kwargs``/``score_kwargs`` pass extra data
        (e.g. the RU-history matrix RidgeTS needs) to fit and score."""
        fit_kwargs = dict(fit_kwargs or {})
        score_kwargs = dict(score_kwargs or {})
        self.results_ = []
        self.best_score_ = -np.inf
        for params in ParameterGrid(self.grid):
            candidate = clone(self.estimator).set_params(**params)
            candidate.fit(X_train, y_train, **fit_kwargs)
            score = candidate.score(X_val, y_val, **score_kwargs)
            self.results_.append((params, score))
            if score > self.best_score_:
                self.best_score_ = score
                self.best_params_ = params
                self.best_estimator_ = candidate
        return self

    def refit(self, X, y, fit_kwargs: Mapping | None = None) -> Estimator:
        """Refit a fresh estimator with the best parameters on (X, y)."""
        if self.best_params_ is None:
            raise RuntimeError("grid search has not been fitted")
        estimator = clone(self.estimator).set_params(**self.best_params_)
        return estimator.fit(X, y, **dict(fit_kwargs or {}))


class KFold:
    """Deterministic K-fold index generator (optionally shuffled)."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(f"cannot split {n_samples} samples into {self.n_splits} folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        sizes = np.full(self.n_splits, n_samples // self.n_splits)
        sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


def train_val_test_split(
    n_samples: int,
    train: int,
    val: int,
    test: int,
    shuffle: bool = False,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``range(n_samples)`` into three contiguous (or shuffled) parts.

    The KDN experiments (Table 3) use *fixed-size* splits (e.g. Snort:
    900/259/200), which this mirrors; time-series data should keep
    ``shuffle=False`` to avoid leakage from the future into training.
    """
    if train < 1 or val < 0 or test < 1:
        raise ValueError("train/test must be >= 1 and val >= 0")
    if train + val + test > n_samples:
        raise ValueError(f"split sizes {train}+{val}+{test} exceed {n_samples} samples")
    indices = np.arange(n_samples)
    if shuffle:
        np.random.default_rng(random_state).shuffle(indices)
    return (
        indices[:train],
        indices[train : train + val],
        indices[train + val : train + val + test],
    )
