"""Classical ML estimators (scikit-learn substitutes, from scratch).

Implements the baseline methods of the paper's §4.1.3 — Ridge, Ridge_ts,
RandomForestRegressor (RFReg) and SVR — plus the preprocessing, grid-search
and PCA utilities the evaluation relies on.
"""

from .base import Estimator, check_X, check_X_y, clone
from .forest import PAPER_RF_MAX_DEPTHS, PAPER_RF_N_ESTIMATORS, RandomForestRegressor
from .lasso import Lasso
from .model_selection import KFold, ParameterGrid, ValidationGridSearch, train_val_test_split
from .pca import PCA
from .preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from .ridge import PAPER_RIDGE_ALPHAS, LinearRegression, Ridge, RidgeTS
from .svr import PAPER_SVR_ALPHAS, PAPER_SVR_EPSILONS, PAPER_SVR_KERNELS, SVR
from .tree import DecisionTreeRegressor, TreeNode

__all__ = [
    "Estimator",
    "clone",
    "check_X",
    "check_X_y",
    "Ridge",
    "RidgeTS",
    "LinearRegression",
    "Lasso",
    "PAPER_RIDGE_ALPHAS",
    "DecisionTreeRegressor",
    "TreeNode",
    "RandomForestRegressor",
    "PAPER_RF_MAX_DEPTHS",
    "PAPER_RF_N_ESTIMATORS",
    "SVR",
    "PAPER_SVR_ALPHAS",
    "PAPER_SVR_KERNELS",
    "PAPER_SVR_EPSILONS",
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "ParameterGrid",
    "ValidationGridSearch",
    "KFold",
    "train_val_test_split",
    "PCA",
]
