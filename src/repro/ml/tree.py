"""CART regression trees (the building block of ``RFReg``, §4.1.3).

The splitter minimizes the weighted sum of child variances (equivalently,
maximizes variance reduction), using a vectorized prefix-sum scan over each
feature's sorted values. Supports ``max_depth``, ``min_samples_split``,
``min_samples_leaf``, and per-node feature subsampling (used by the random
forest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Estimator, check_X, check_X_y

__all__ = ["DecisionTreeRegressor", "TreeNode"]


@dataclass
class TreeNode:
    """One node of a fitted regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Return (feature, threshold, weighted_child_sse) of the best split.

    For each candidate feature, sort the target by feature value and scan
    all split positions with prefix sums: SSE of a segment is
    ``sum(y^2) - sum(y)^2 / n``, so the weighted child SSE at each split is
    computable in O(n) after the sort.
    """
    n = len(y)
    best: tuple[int, float, float] | None = None
    best_sse = np.inf
    for feature in feature_ids:
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y[order]
        # Candidate split positions: between distinct consecutive values.
        csum = np.cumsum(sorted_y)
        csum_sq = np.cumsum(sorted_y**2)
        total = csum[-1]
        total_sq = csum_sq[-1]
        counts = np.arange(1, n)  # size of the left child at each position
        left_sse = csum_sq[:-1] - csum[:-1] ** 2 / counts
        right_counts = n - counts
        right_sum = total - csum[:-1]
        right_sse = (total_sq - csum_sq[:-1]) - right_sum**2 / right_counts
        sse = left_sse + right_sse
        valid = (
            (sorted_values[1:] > sorted_values[:-1])
            & (counts >= min_samples_leaf)
            & (right_counts >= min_samples_leaf)
        )
        if not valid.any():
            continue
        sse = np.where(valid, sse, np.inf)
        idx = int(np.argmin(sse))
        if sse[idx] < best_sse:
            best_sse = float(sse[idx])
            threshold = 0.5 * (sorted_values[idx] + sorted_values[idx + 1])
            best = (int(feature), threshold, best_sse)
    return best


class DecisionTreeRegressor(Estimator):
    """A CART regressor predicting leaf means.

    Parameters mirror the scikit-learn estimator the paper tunes:
    ``max_depth`` in {3..10} for RFReg's grid. ``max_features`` selects a
    random feature subset per node (``None`` = all, ``'sqrt'``, or an int),
    which injects the de-correlation random forests need.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int = 0

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self.root_ = self._grow(X, y, depth=0)
        self._fitted = True
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, int):
            if not 1 <= self.max_features <= self.n_features_:
                raise ValueError("max_features out of range")
            return self.max_features
        raise ValueError(f"invalid max_features {self.max_features!r}")

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            prediction=float(y.mean()),
            n_samples=len(y),
            impurity=float(y.var()),
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(y) < self.min_samples_split
            or node.impurity == 0.0
        ):
            return node
        k = self._n_candidate_features()
        if k == self.n_features_:
            feature_ids = np.arange(self.n_features_)
        else:
            feature_ids = self._rng.choice(self.n_features_, size=k, replace=False)
        split = _best_split(X, y, feature_ids, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"expected {self.n_features_} features, got {X.shape[1]}")
        out = np.empty(len(X), dtype=np.float64)
        # Iterative routing: partition index sets down the tree.
        stack: list[tuple[TreeNode, np.ndarray]] = [(self.root_, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a stump/leaf-only tree)."""
        self._require_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        self._require_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    def feature_importances(self) -> np.ndarray:
        """Impurity-based importances: weighted variance reduction per feature.

        Each split contributes ``n_node * (impurity - weighted child
        impurity)`` to its feature; totals are normalized to sum to 1
        (all-zero when the tree is a single leaf).
        """
        self._require_fitted()
        importances = np.zeros(self.n_features_)

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                return
            child_impurity = (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            ) / node.n_samples
            gain = node.n_samples * (node.impurity - child_impurity)
            importances[node.feature] += max(gain, 0.0)
            walk(node.left)
            walk(node.right)

        walk(self.root_)
        total = importances.sum()
        return importances / total if total > 0 else importances
