"""Parallel sharded campaign execution.

The ROADMAP's north star is a production-scale system that serves heavy
traffic "as fast as the hardware allows" via sharding, batching, and
async. This package is the campaign-side half of that promise:

- :mod:`~repro.parallel.pool` — a deterministic fan-out/fan-in worker
  pool (threads for the numpy-released-GIL inference path, processes for
  training-scale jobs, inline for ``n_workers=1``) whose ``map`` always
  returns results in input order;
- :mod:`~repro.parallel.sharding` — a stable crc32 shard map over TSDB
  series keys plus read-only point-in-time snapshot shards, so
  per-execution read-backs never contend on the live store;
- :mod:`~repro.parallel.executor` — :class:`CampaignScorer`, which scores
  many executions that share one model version: per-chain error-model
  calibration computed once (the serial path recomputes it per
  execution), window construction cached, predict calls coalesced into
  batched forwards, all fanned out over the pool and merged back
  deterministically.

The contract that makes this safe to adopt is **byte-identity**: a
4-worker campaign produces bitwise the same ``AnomalyReport``s,
``DayReport``s, masks, and final model as the serial run. Workers compute
pure scoring results; every side effect (alarm pushes, drift
observations, masking, pool appends) is applied serially in input order
during fan-in.
"""

from .executor import CampaignScorer, ExecutionScore, WindowCache
from .pool import SequencedMerger, WorkerPool, split_round_robin
from .sharding import ReadOnlyTSDBError, TSDBShards, TSDBSnapshot, shard_index, snapshot_shards

__all__ = [
    "CampaignScorer",
    "ExecutionScore",
    "ReadOnlyTSDBError",
    "SequencedMerger",
    "TSDBShards",
    "TSDBSnapshot",
    "WindowCache",
    "WorkerPool",
    "shard_index",
    "snapshot_shards",
    "split_round_robin",
]
