"""TSDB shard map + read-only snapshot views.

Parallel campaign read-backs must not contend on (or race with) the live
:class:`~repro.workflow.tsdb.TimeSeriesDB`: its series dict mutates on
every write, and its ``query`` is a linear scan over *every* stored
series. This module takes a point-in-time snapshot of the store and
deals the series into ``n`` read-only shards:

- the shard map hashes the **label half** of the canonical series key
  with crc32 (the builtin ``hash()`` is salted per process and therefore
  useless for a stable shard map), so every series of one labelled
  entity — all metrics of one execution's ``env=<record>`` — lands in
  the *same* shard and a per-execution read-back touches exactly one
  shard, never contending with other executions' reads;
- each :class:`TSDBSnapshot` copies the sample data into frozen numpy
  arrays (writes after the snapshot are invisible — snapshot isolation),
  indexes series by exact key for O(1) lookups and by metric for scans
  bounded to the shard instead of the whole store;
- write attempts on a snapshot raise :class:`ReadOnlyTSDBError` so a
  worker can never accidentally mutate what it was given to read.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left

import numpy as np

from ..workflow.tsdb import AmbiguousSeries, SeriesNotFound, TimeSeriesDB

__all__ = [
    "ReadOnlyTSDBError",
    "SnapshotSeries",
    "TSDBShards",
    "TSDBSnapshot",
    "shard_index",
    "snapshot_shards",
]


class ReadOnlyTSDBError(TypeError):
    """A write was attempted on a read-only TSDB snapshot."""


def _label_payload(label_items: tuple) -> bytes:
    return repr(label_items).encode("utf-8")


def shard_index(key: tuple, n_shards: int) -> int:
    """Stable shard for a canonical series key ``(metric, label_items)``.

    Hashes the sorted label tuple with crc32 so the assignment survives
    process restarts and interpreter hash randomization. Label-less
    series (e.g. self-metrics) fall back to hashing the metric name.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    metric, label_items = key
    payload = _label_payload(label_items) if label_items else metric.encode("utf-8")
    return zlib.crc32(payload) % n_shards


class SnapshotSeries:
    """A frozen series: duck-type compatible with the slice of
    :class:`~repro.workflow.tsdb.Series` the read paths use."""

    __slots__ = ("metric", "labels", "_timestamps", "_values")

    def __init__(self, metric: str, labels: dict[str, str],
                 timestamps: np.ndarray, values: np.ndarray):
        self.metric = metric
        self.labels = labels
        self._timestamps = timestamps
        self._values = values

    def __len__(self) -> int:
        return len(self._timestamps)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The frozen (timestamps, values) arrays — read-only views."""
        return self._timestamps, self._values

    def range(self, start: float, end: float) -> "SnapshotSeries":
        """Samples with start <= timestamp < end (same contract as Series)."""
        lo = bisect_left(self._timestamps, start)  # type: ignore[arg-type]
        hi = bisect_left(self._timestamps, end)  # type: ignore[arg-type]
        return SnapshotSeries(
            self.metric, dict(self.labels), self._timestamps[lo:hi], self._values[lo:hi]
        )


class TSDBSnapshot:
    """One read-only shard of a snapshotted TSDB."""

    def __init__(self, name: str, items: list[tuple[tuple, SnapshotSeries]]):
        self.name = name
        self._by_key: dict[tuple, SnapshotSeries] = dict(items)
        self._by_metric: dict[str, list[SnapshotSeries]] = {}
        self._n_samples = 0
        for _, series in items:
            self._by_metric.setdefault(series.metric, []).append(series)
            self._n_samples += len(series)

    # -- reads -------------------------------------------------------------
    def exact(self, metric: str, labels: dict[str, str]) -> SnapshotSeries:
        """O(1) lookup by the *full* label set (the hot read-back path)."""
        key = (metric, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        series = self._by_key.get(key)
        if series is None:
            raise SeriesNotFound(f"no series {metric} {labels} in shard {self.name}")
        return series

    def query(self, metric: str, matchers: dict[str, str] | None = None) -> list[SnapshotSeries]:
        """Series of ``metric`` whose labels include all ``matchers``.

        The scan is bounded to this shard's series of that one metric —
        1/n of the store instead of the live DB's every-series walk.
        """
        matchers = {str(k): str(v) for k, v in (matchers or {}).items()}
        return [
            series
            for series in self._by_metric.get(metric, ())
            if all(series.labels.get(k) == v for k, v in matchers.items())
        ]

    def query_one(self, metric: str, matchers: dict[str, str] | None = None) -> SnapshotSeries:
        """Exactly-one semantics matching :meth:`TimeSeriesDB.query_one`."""
        matches = self.query(metric, matchers)
        if not matches:
            raise SeriesNotFound(f"no series matches {metric} {matchers or {}}")
        if len(matches) > 1:
            raise AmbiguousSeries(
                f"selector {metric} {matchers or {}} matches {len(matches)} series; "
                f"add labels to disambiguate"
            )
        return matches[0]

    def query_range(
        self, metric: str, matchers: dict[str, str] | None, start: float, end: float
    ) -> list[SnapshotSeries]:
        if end <= start:
            raise ValueError("need start < end")
        return [series.range(start, end) for series in self.query(metric, matchers)]

    # -- introspection -----------------------------------------------------
    def metrics(self) -> list[str]:
        return sorted(self._by_metric)

    def label_values(self, label: str) -> list[str]:
        return sorted(
            {
                series.labels[label]
                for series in self._by_key.values()
                if label in series.labels
            }
        )

    def n_series(self) -> int:
        return len(self._by_key)

    def n_samples(self) -> int:
        return self._n_samples

    # -- writes: refused ---------------------------------------------------
    def write(self, *args, **kwargs) -> None:
        raise ReadOnlyTSDBError(f"snapshot shard {self.name!r} is read-only")

    def write_array(self, *args, **kwargs) -> None:
        raise ReadOnlyTSDBError(f"snapshot shard {self.name!r} is read-only")


class TSDBShards:
    """The full shard set of one snapshot, with routing helpers."""

    def __init__(self, shards: list[TSDBSnapshot], source_name: str):
        self.shards = shards
        self.source_name = source_name

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, labels: dict[str, str]) -> TSDBSnapshot:
        """The shard holding every series carrying exactly this label set.

        Routing uses the same label-half hash as the shard map, so all
        metrics of one labelled entity resolve to one shard. Only valid
        for the *full* stored label set (subset matchers cannot be
        routed — use :meth:`query_one` for those).
        """
        label_items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        if not label_items:
            raise ValueError("shard_for needs a non-empty label set")
        return self.shards[zlib.crc32(_label_payload(label_items)) % len(self.shards)]

    def query_one(self, metric: str, matchers: dict[str, str] | None = None) -> SnapshotSeries:
        """Global exactly-one lookup across every shard (subset matchers ok)."""
        matches: list[SnapshotSeries] = []
        for shard in self.shards:
            matches.extend(shard.query(metric, matchers))
        if not matches:
            raise SeriesNotFound(f"no series matches {metric} {matchers or {}}")
        if len(matches) > 1:
            raise AmbiguousSeries(
                f"selector {metric} {matchers or {}} matches {len(matches)} series; "
                f"add labels to disambiguate"
            )
        return matches[0]

    def n_series(self) -> int:
        return sum(shard.n_series() for shard in self.shards)

    def n_samples(self) -> int:
        return sum(shard.n_samples() for shard in self.shards)


def snapshot_shards(tsdb: TimeSeriesDB, n_shards: int) -> TSDBShards:
    """Snapshot a live TSDB into ``n_shards`` read-only shards.

    Sample data is copied into frozen arrays at call time: writes to the
    live store after this returns are invisible to the shards (snapshot
    isolation), and no worker holding a shard can observe a half-applied
    append.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    buckets: list[list[tuple[tuple, SnapshotSeries]]] = [[] for _ in range(n_shards)]
    for key, series in tsdb.series_items():
        timestamps = np.array(series.timestamps, dtype=np.float64)
        values = np.array(series.values, dtype=np.float64)
        timestamps.setflags(write=False)
        values.setflags(write=False)
        frozen = SnapshotSeries(series.metric, dict(series.labels), timestamps, values)
        buckets[shard_index(key, n_shards)].append((key, frozen))
    shards = [
        TSDBSnapshot(f"{tsdb.name}/shard-{index}", bucket)
        for index, bucket in enumerate(buckets)
    ]
    return TSDBShards(shards, source_name=tsdb.name)
