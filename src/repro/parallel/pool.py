"""Deterministic fan-out/fan-in worker pool.

``WorkerPool.map`` is the only primitive the campaign executor needs: run
one function over a list of items and hand back the results *in input
order*, regardless of which worker finished first. Three kinds:

- ``"serial"`` — plain in-caller loop; the degenerate pool used when
  ``n_workers == 1`` so single-worker runs pay zero threading overhead
  and exercise exactly the legacy code path;
- ``"threads"`` — a ``ThreadPoolExecutor``; the right choice for the
  inference path, where numpy releases the GIL inside the matmul/
  transcendental kernels that dominate a forward;
- ``"processes"`` — a ``ProcessPoolExecutor`` for training-scale jobs
  that are pure-Python bound (callables and items must be picklable).

Exceptions propagate: if any item's task raises, ``map`` re-raises the
*first* (by input order) failure after letting the remaining tasks
finish — deterministic error behavior, no orphaned work.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs import get_observability

__all__ = ["SequencedMerger", "WorkerPool", "split_round_robin"]

_OBS = get_observability()
_M_TASKS = _OBS.counter(
    "repro_parallel_tasks_total",
    "Tasks dispatched through WorkerPool.map.",
    labels=("kind",),
)
_G_WORKERS = _OBS.gauge(
    "repro_parallel_pool_workers",
    "Configured worker count of the most recently started pool.",
)

T = TypeVar("T")
R = TypeVar("R")

_KINDS = ("serial", "threads", "processes")


def split_round_robin(items: Sequence[T], n_shards: int) -> list[list[T]]:
    """Deal ``items`` into ``n_shards`` lists, round-robin, order-stable.

    Shard ``s`` receives ``items[s::n_shards]``; concatenating the shards
    interleaved restores the original order, which is what lets callers
    reassemble per-shard results deterministically.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return [list(items[shard::n_shards]) for shard in range(n_shards)]


class SequencedMerger:
    """Release out-of-order completions in strict submission order.

    The fan-in half of the pool contract, factored out for callers that
    cannot use a blocking ``map`` — e.g. the serve supervisor, where
    batches complete on whichever worker process finishes first but side
    effects (alarm pushes) must be applied in dispatch order to stay
    byte-identical to a serial run. ``put(seq, item)`` buffers the item
    and returns every ``(seq, item)`` pair that is now releasable — a
    contiguous run starting at the next unreleased sequence number.

    Single-threaded by design (it lives on an event loop); callers that
    share one across threads must lock around ``put``.
    """

    def __init__(self, start: int = 0):
        self._next = int(start)
        self._buffer: dict[int, object] = {}

    @property
    def next_seq(self) -> int:
        """The sequence number the merger is waiting to release."""
        return self._next

    @property
    def pending(self) -> int:
        """Completed items buffered behind an earlier, unfinished one."""
        return len(self._buffer)

    def put(self, seq: int, item) -> list[tuple[int, object]]:
        """Buffer ``item`` under ``seq``; return the newly releasable run."""
        if seq < self._next or seq in self._buffer:
            raise ValueError(f"sequence {seq} was already released or buffered")
        self._buffer[seq] = item
        released: list[tuple[int, object]] = []
        while self._next in self._buffer:
            released.append((self._next, self._buffer.pop(self._next)))
            self._next += 1
        return released


class WorkerPool:
    """A reusable, order-preserving map over a small worker fleet."""

    def __init__(self, n_workers: int = 1, kind: str = "threads"):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}; got {kind!r}")
        self.n_workers = n_workers
        self.kind = "serial" if n_workers == 1 else kind
        self._executor: Executor | None = None

    # -- lifecycle ---------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.kind == "threads":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_workers, thread_name_prefix="repro-worker"
                )
            else:  # processes
                self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            _G_WORKERS.set(self.n_workers)
        return self._executor

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the primitive -----------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if not items:
            return []
        _M_TASKS.labels(kind=self.kind).inc(len(items))
        if self.kind == "serial" or len(items) == 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        futures = [executor.submit(fn, item) for item in items]
        results: list[R] = []
        first_error: BaseException | None = None
        for future in futures:  # submission order == input order
            try:
                results.append(future.result())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results
