"""The parallel campaign scorer: calibrate once, coalesce, fan out.

:class:`CampaignScorer` scores a batch of test executions that all share
one published model version — exactly the shape of a campaign day's
monitoring phase and of a fleet-wide scoring sweep. It removes the three
sources of redundant work the serial path pays:

1. **Per-chain calibration, once.** The serial orchestrator recomputes
   the chain's :class:`~repro.core.anomaly.GaussianErrorModel` for every
   pending execution, re-predicting every prior build each time. Under
   one model version the error model is a pure function of the chain's
   ingested history, so the scorer computes it once per (model version,
   chain) and reuses it for every execution of that chain.
2. **Window construction, cached.** ``build_windows`` over a prior build
   is identical every time it is re-predicted; the :class:`WindowCache`
   memoizes it keyed by execution identity.
3. **Forwards, coalesced.** Predictions for all executions needing the
   same model are concatenated into batched ``predict`` calls and split
   back per execution. Every kernel on the compiled inference path is
   row-wise, so the split results are *bitwise identical* to
   per-execution calls — the foundation of the byte-identical merge.

Chains are dealt round-robin onto the worker pool (chain affinity keeps
one chain's calibration and scoring on one worker); results come back in
input order. Workers compute pure :class:`ExecutionScore` values — no
alarm pushes, masking, or drift updates happen here — so the caller can
apply side effects serially in input order and match the serial run
byte for byte.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.anomaly import AnomalyReport, ContextualAnomalyDetector, GaussianErrorModel
from ..core.model import Env2VecRegressor
from ..data.chains import TestExecution
from ..data.environment import Environment
from ..data.windows import build_windows
from ..obs import get_observability
from .pool import WorkerPool, split_round_robin

__all__ = ["CampaignScorer", "ExecutionScore", "WindowCache"]

_OBS = get_observability()
_M_SCORED = _OBS.counter(
    "repro_parallel_executions_scored_total",
    "Executions scored through the parallel campaign executor.",
)
_M_CALIBRATIONS = _OBS.counter(
    "repro_parallel_chain_calibrations_total",
    "Per-chain error-model calibrations computed by the executor.",
)
_M_CALIB_REUSED = _OBS.counter(
    "repro_parallel_calibrations_reused_total",
    "Executions served by an already-computed chain error model "
    "(each of these was a full recalibration on the serial path).",
)
_M_COALESCED_BATCHES = _OBS.counter(
    "repro_parallel_coalesced_batches_total",
    "Batched predict calls that replaced several per-execution forwards.",
)
_M_COALESCED_ROWS = _OBS.counter(
    "repro_parallel_coalesced_rows_total",
    "Window rows scored through coalesced predict calls.",
)
_M_WINDOW_HITS = _OBS.counter(
    "repro_parallel_window_cache_hits_total",
    "build_windows calls answered by the window cache.",
)


class WindowCache:
    """Memoizes ``build_windows`` keyed by execution identity.

    Prior builds are re-windowed every time a chain recalibrates; their
    arrays never change, so the `(X, history, y)` triple is cached per
    :class:`TestExecution` *object*. Keys are ``id(execution)`` with the
    execution pinned in the entry — the identity check on hit defeats
    CPython id reuse after garbage collection. Cached arrays are frozen
    (read-only) because they are shared across worker threads.
    """

    def __init__(self, n_lags: int, maxsize: int = 8192):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.n_lags = n_lags
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._cache: OrderedDict[int, tuple[TestExecution, tuple]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def windows(self, execution: TestExecution) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = id(execution)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None and entry[0] is execution:
                self.hits += 1
                self._cache.move_to_end(key)
                _M_WINDOW_HITS.inc()
                return entry[1]
        triple = build_windows(execution.features, execution.cpu, self.n_lags)
        for array in triple:
            array.setflags(write=False)
        with self._lock:
            self.misses += 1
            self._cache[key] = (execution, triple)
            if len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
        return triple


@dataclass
class ExecutionScore:
    """Pure scoring result for one execution — no side effects applied."""

    index: int
    report: AnomalyReport | None  # None: too short to window (serial skips it)
    mae: float | None  # mean |prediction - observation|, None when unscored
    n_windows: int

    @property
    def n_alarms(self) -> int:
        return 0 if self.report is None else self.report.n_alarms


class CampaignScorer:
    """Scores execution fleets sharing one model version, in parallel."""

    def __init__(
        self,
        detector: ContextualAnomalyDetector,
        n_lags: int,
        pool: WorkerPool | None = None,
        window_cache: WindowCache | None = None,
        inference_dtype: str = "float64",
    ):
        if inference_dtype not in ("float64", "float32"):
            raise ValueError("inference_dtype must be 'float64' or 'float32'")
        self.detector = detector
        self.n_lags = n_lags
        self.pool = pool if pool is not None else WorkerPool(n_workers=1)
        self.window_cache = window_cache if window_cache is not None else WindowCache(n_lags)
        # float64 keeps campaign fan-in byte-identical to serial; float32
        # trades that for batch throughput (FLOAT32_ATOL parity bound).
        self.inference_dtype = np.dtype(inference_dtype).type

    # -- coalesced prediction ---------------------------------------------
    def _predict_coalesced(
        self, model: Env2VecRegressor, parts: list[tuple[TestExecution, tuple]]
    ) -> list[np.ndarray]:
        """One batched predict over many executions, split back per part.

        ``parts`` pairs each execution with its cached window triple.
        Bitwise identical to per-execution ``model.predict`` calls: the
        scaler, vocabulary encode, and every compiled kernel are
        row-wise, and chunking at ``batch_size`` does not change any
        row's arithmetic.
        """
        if not parts:
            return []
        environments: list[Environment] = []
        lengths: list[int] = []
        for execution, (X, _, y) in parts:
            environments.extend([execution.environment] * len(y))
            lengths.append(len(y))
        X_all = np.concatenate([triple[0] for _, triple in parts], axis=0)
        history_all = np.concatenate([triple[1] for _, triple in parts], axis=0)
        predictions = model.predict(environments, X_all, history_all)
        if len(parts) > 1:
            _M_COALESCED_BATCHES.inc()
            _M_COALESCED_ROWS.inc(len(predictions))
        pieces, start = [], 0
        for length in lengths:
            pieces.append(predictions[start : start + length])
            start += length
        return pieces

    def _chain_error_model(
        self,
        model: Env2VecRegressor,
        history: Sequence[TestExecution],
        masked: set[Environment],
    ) -> GaussianErrorModel | None:
        """The serial orchestrator's ``_error_model``, computed once.

        Filter and skip semantics replicate the serial path exactly:
        masked environments are excluded first; if nothing remains the
        caller falls back to self-calibrated detection; executions too
        short to window are skipped from the error pool; errors are
        concatenated in ingestion order.
        """
        previous = [e for e in history if e.environment not in masked]
        if not previous:
            return None
        eligible = [e for e in previous if e.n_timesteps > self.n_lags + 1]
        if not eligible:
            return None
        parts = [(e, self.window_cache.windows(e)) for e in eligible]
        predictions = self._predict_coalesced(model, parts)
        errors = [
            pred - triple[2] for pred, (_, triple) in zip(predictions, parts)
        ]
        _M_CALIBRATIONS.inc()
        return GaussianErrorModel.fit(np.concatenate(errors))

    # -- the scoring entry point -------------------------------------------
    def score(
        self,
        model: Env2VecRegressor,
        executions: Sequence[TestExecution],
        history: Mapping[tuple, Sequence[TestExecution]],
        masked: set[Environment],
    ) -> list[ExecutionScore]:
        """Score every execution; results ordered by input position.

        ``history`` maps chain key -> previously ingested executions of
        that chain (the orchestrator's ``_ingested``); ``masked`` is the
        set of environments excluded from calibration. Workers perform
        no side effects — alarms/masks/drift belong to the caller's
        serial fan-in.
        """
        if not executions:
            return []
        # Workers must never race the lazy compile; the dtype is pinned
        # here so every shard scores at the same precision.
        model.ensure_compiled(dtype=self.inference_dtype)

        # Chain-affinity sharding: group by chain (first-appearance order),
        # deal chains round-robin so one chain's calibration + scoring
        # stays on one worker and is computed exactly once.
        by_chain: OrderedDict[tuple, list[tuple[int, TestExecution]]] = OrderedDict()
        for index, execution in enumerate(executions):
            by_chain.setdefault(execution.environment.chain_key, []).append((index, execution))
        chunks = [
            chunk
            for chunk in split_round_robin(list(by_chain.items()), self.pool.n_workers)
            if chunk
        ]

        def score_chunk(
            chunk: list[tuple[tuple, list[tuple[int, TestExecution]]]],
        ) -> list[ExecutionScore]:
            with _OBS.span("parallel.worker"):
                scores: list[ExecutionScore] = []
                for chain_key, items in chunk:
                    long_items = [
                        (i, e) for i, e in items if e.n_timesteps > self.n_lags + 1
                    ]
                    # Calibrate only when something will be detected with it
                    # (the serial path never calibrates for short executions).
                    error_model = (
                        self._chain_error_model(model, history.get(chain_key, ()), masked)
                        if long_items
                        else None
                    )
                    parts = [(e, self.window_cache.windows(e)) for _, e in long_items]
                    predictions = self._predict_coalesced(model, parts)
                    if len(long_items) > 1:
                        _M_CALIB_REUSED.inc(len(long_items) - 1)
                    scored: dict[int, ExecutionScore] = {}
                    for (index, _), pred, (_, triple) in zip(long_items, predictions, parts):
                        observed = triple[2]
                        if error_model is None:
                            report = self.detector.detect_self_calibrated(pred, observed)
                        else:
                            report = self.detector.detect(pred, observed, error_model)
                        scored[index] = ExecutionScore(
                            index=index,
                            report=report,
                            mae=float(np.abs(pred - observed).mean()),
                            n_windows=len(observed),
                        )
                    for index, execution in items:
                        score = scored.get(index)
                        if score is None:  # too short: serial path skips it
                            score = ExecutionScore(
                                index=index, report=None, mae=None, n_windows=0
                            )
                        scores.append(score)
                return scores

        merged: list[ExecutionScore | None] = [None] * len(executions)
        for chunk_scores in self.pool.map(score_chunk, chunks):
            for score in chunk_scores:
                merged[score.index] = score
        if any(score is None for score in merged):  # pragma: no cover - invariant
            raise RuntimeError("scorer fan-in lost an execution; sharding is broken")
        _M_SCORED.inc(len(executions))
        return merged
