"""Prometheus file-based service discovery (paper §3, step 1).

"When a new test case is executed, we modify a service discovery
configuration JSON file for Prometheus, appending the endpoint for the
metric collector along with a reference to the EM labels:

    [..., {"targets": ["IP:PORT"], "labels": {"env": "EM_record_id"}}]
"

:class:`ServiceDiscovery` maintains exactly that JSON file, plus the EM
record registry mapping record ids to full environments.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..data.environment import Environment

__all__ = ["ServiceDiscovery", "EMRegistry"]


class EMRegistry:
    """Maps EM record ids to environments (the 'EM_record_id' reference)."""

    def __init__(self) -> None:
        self._records: dict[str, Environment] = {}
        self._ids: dict[Environment, str] = {}
        self._counter = 0

    def register(self, environment: Environment) -> str:
        """Idempotently register an environment; returns its record id."""
        if environment in self._ids:
            return self._ids[environment]
        record_id = f"em-{self._counter:06d}"
        self._counter += 1
        self._records[record_id] = environment
        self._ids[environment] = record_id
        return record_id

    def lookup(self, record_id: str) -> Environment:
        try:
            return self._records[record_id]
        except KeyError:
            raise KeyError(f"unknown EM record id {record_id!r}") from None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records


class ServiceDiscovery:
    """The Prometheus `file_sd` JSON config, as the paper modifies it."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        if self.path.exists():
            self._entries = json.loads(self.path.read_text())
            if not isinstance(self._entries, list):
                raise ValueError(f"{self.path} does not contain a JSON list")
        else:
            self._entries = []
            self._flush()

    def _flush(self) -> None:
        self.path.write_text(json.dumps(self._entries, indent=2))

    def add_target(self, endpoint: str, em_record_id: str) -> None:
        """Append the paper's snippet: a target plus its env label."""
        if not endpoint or ":" not in endpoint:
            raise ValueError(f"endpoint must look like IP:PORT; got {endpoint!r}")
        if any(endpoint in entry["targets"] for entry in self._entries):
            raise ValueError(f"endpoint {endpoint!r} is already registered")
        self._entries.append({"targets": [endpoint], "labels": {"env": em_record_id}})
        self._flush()

    def remove_target(self, endpoint: str) -> None:
        before = len(self._entries)
        self._entries = [e for e in self._entries if endpoint not in e["targets"]]
        if len(self._entries) == before:
            raise KeyError(f"endpoint {endpoint!r} is not registered")
        self._flush()

    def targets(self) -> list[dict]:
        """The current config entries (as Prometheus would read them)."""
        return [dict(entry) for entry in self._entries]

    def env_of(self, endpoint: str) -> str:
        for entry in self._entries:
            if endpoint in entry["targets"]:
                return entry["labels"]["env"]
        raise KeyError(f"endpoint {endpoint!r} is not registered")

    def __len__(self) -> int:
        return len(self._entries)
