"""Per-day campaign checkpoints for idempotent resume.

A multi-day testing campaign is exactly the kind of process that gets
killed mid-run — node reboots, deploys, OOM. The orchestrator therefore
snapshots its mutable state after every completed day: the training pool,
the masked-environment set, the serving model blob, the drift detector,
the self-scrape clock, the day reports so far, and the dead-letter
records. Restoring the latest snapshot and re-running the campaign
replays only the *remaining* days and produces the same reports and the
same final model as an uninterrupted run (training is deterministic given
the pool and seed — each day fits a fresh seeded regressor).

Snapshots are single ``day-NNNNN.npz`` files: JSON metadata plus the pool
arrays and the model blob, written atomically (tmp file + rename) so a
kill during checkpointing never leaves a torn snapshot as "latest".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.environment import Environment

__all__ = ["CampaignState", "save_checkpoint", "load_latest_checkpoint", "checkpoint_days"]


@dataclass
class CampaignState:
    """Everything the orchestrator needs to resume after ``day``."""

    day: int
    pool: list[tuple[Environment, np.ndarray, np.ndarray]]
    masked: list[Environment]
    model_blob: bytes | None
    drift_state: dict
    exporter_now: float | None
    reports: list[dict] = field(default_factory=list)
    dead_letters: list[dict] = field(default_factory=list)


def _checkpoint_path(directory: Path, day: int) -> Path:
    return directory / f"day-{day:05d}.npz"


def checkpoint_days(directory: str | Path) -> list[int]:
    """Days with a stored checkpoint, ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    days = []
    for path in directory.glob("day-*.npz"):
        try:
            days.append(int(path.stem.split("-")[1]))
        except (IndexError, ValueError):
            continue
    return sorted(days)


def save_checkpoint(directory: str | Path, state: CampaignState) -> Path:
    """Write one atomic snapshot; returns the checkpoint path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "day": state.day,
        "pool_environments": [env.as_dict() for env, _, _ in state.pool],
        "masked": [env.as_dict() for env in state.masked],
        "drift_state": state.drift_state,
        "exporter_now": state.exporter_now,
        "reports": state.reports,
        "dead_letters": state.dead_letters,
    }
    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    }
    for i, (_, features, cpu) in enumerate(state.pool):
        arrays[f"pool_f_{i:05d}"] = np.asarray(features, dtype=np.float64)
        arrays[f"pool_c_{i:05d}"] = np.asarray(cpu, dtype=np.float64)
    if state.model_blob is not None:
        arrays["model_blob"] = np.frombuffer(state.model_blob, dtype=np.uint8)
    path = _checkpoint_path(directory, state.day)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)
    return path


def load_checkpoint(directory: str | Path, day: int) -> CampaignState:
    """Load one day's snapshot."""
    path = _checkpoint_path(Path(directory), day)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        pool = []
        for i, env_dict in enumerate(meta["pool_environments"]):
            pool.append(
                (
                    Environment(**env_dict),
                    archive[f"pool_f_{i:05d}"],
                    archive[f"pool_c_{i:05d}"],
                )
            )
        model_blob = archive["model_blob"].tobytes() if "model_blob" in archive else None
    return CampaignState(
        day=int(meta["day"]),
        pool=pool,
        masked=[Environment(**env) for env in meta["masked"]],
        model_blob=model_blob,
        drift_state=meta["drift_state"],
        exporter_now=meta["exporter_now"],
        reports=meta["reports"],
        dead_letters=meta["dead_letters"],
    )


def load_latest_checkpoint(directory: str | Path) -> CampaignState | None:
    """The most recent snapshot in ``directory``, or None when empty."""
    days = checkpoint_days(directory)
    if not days:
        return None
    return load_checkpoint(directory, days[-1])
