"""Model store (paper §3, steps 2 and 5 — model-server substitute).

"After training completion, the model is available via HTTP" and "the
Env2Vec prediction pipeline fetches the latest model (essentially a weight
matrix), before beginning execution, from the training pipeline HTTP
server." The store versions serialized model blobs
(:mod:`repro.nn.serialize` npz bytes) on disk or in memory; the prediction
pipeline always fetches the latest published version.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = ["CorruptModelError", "ModelVersion", "ModelStore"]


class CorruptModelError(RuntimeError):
    """A fetched model blob is truncated or fails its integrity checks.

    Serving a half-written blob is worse than serving no model at all —
    deserialization may *succeed* on a truncated npz and yield garbage
    weights. Every blob is checksummed (SHA-256) at publish time and
    verified on fetch; callers with a cached model are expected to keep
    serving it (the prediction pipeline's last-good fallback).
    """


@dataclass(frozen=True)
class ModelVersion:
    version: int
    size_bytes: int
    published_at: float
    metadata: dict
    checksum: str = ""


class ModelStore:
    """Versioned blob store; ``path=None`` keeps everything in memory."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._blobs: dict[int, bytes] = {}
        self._versions: dict[int, ModelVersion] = {}
        self._latest = 0
        self._subscribers: list[Callable[[ModelVersion], None]] = []
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._load_existing()

    def _load_existing(self) -> None:
        for blob_file in sorted(self.path.glob("model-*.npz")):
            version = int(blob_file.stem.split("-")[1])
            meta_file = self.path / f"model-{version:06d}.json"
            meta = json.loads(meta_file.read_text()) if meta_file.exists() else {}
            blob = blob_file.read_bytes()
            self._blobs[version] = blob
            self._versions[version] = ModelVersion(
                version=version,
                size_bytes=len(blob),
                published_at=meta.get("published_at", blob_file.stat().st_mtime),
                metadata=meta.get("metadata", {}),
                # Blobs published before checksums existed verify by
                # structure alone; new publishes always record a digest.
                checksum=meta.get("checksum", ""),
            )
            self._latest = max(self._latest, version)

    def publish(
        self,
        blob: bytes,
        metadata: dict | None = None,
        published_at: float | None = None,
    ) -> ModelVersion:
        """Store a new model blob as the latest version.

        ``published_at`` defaults to the version number itself — a logical
        timestamp. Reading the wall clock here (REP002) made same-seed
        campaign reports differ byte-for-byte across runs; callers that
        want real time pass it explicitly.
        """
        if not blob:
            raise ValueError("cannot publish an empty model blob")
        version = self._latest + 1
        record = ModelVersion(
            version=version,
            size_bytes=len(blob),
            published_at=float(version) if published_at is None else published_at,
            metadata=dict(metadata or {}),
            checksum=hashlib.sha256(blob).hexdigest(),
        )
        self._blobs[version] = blob
        self._versions[version] = record
        self._latest = version
        if self.path is not None:
            (self.path / f"model-{version:06d}.npz").write_bytes(blob)
            (self.path / f"model-{version:06d}.json").write_text(
                json.dumps(
                    {
                        "published_at": record.published_at,
                        "metadata": record.metadata,
                        "checksum": record.checksum,
                    }
                )
            )
        # Publish hooks fire after the blob is durably stored, so a
        # subscriber that immediately fetches the version always succeeds.
        # The serve layer's warm model pool uses this to compile the new
        # version *at publish time* — the request path never pays a cold
        # compile after a retrain. Subscriber exceptions propagate to the
        # publisher (a failed warm compile is the trainer's problem, not a
        # condition to hide from it); subscribers that prefer last-good
        # semantics catch their own errors.
        for callback in tuple(self._subscribers):
            callback(record)
        return record

    def subscribe(self, callback: Callable[[ModelVersion], None]) -> Callable[[], None]:
        """Invoke ``callback(record)`` after every successful publish.

        Returns an idempotent unsubscribe function. Callbacks run
        synchronously on the publisher's thread, in subscription order.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def _verify(self, blob: bytes, record: ModelVersion) -> None:
        """Reject truncated or bit-rotted blobs before they deserialize.

        The stored bytes must match what was published — length for fast
        truncation detection, SHA-256 for everything subtler. Content is
        deliberately not sniffed: the store versions opaque blobs.
        """
        if len(blob) != record.size_bytes:
            raise CorruptModelError(
                f"model version {record.version} is {len(blob)} bytes; "
                f"expected {record.size_bytes} (truncated blob?)"
            )
        if record.checksum and hashlib.sha256(blob).hexdigest() != record.checksum:
            raise CorruptModelError(
                f"model version {record.version} fails its SHA-256 integrity check"
            )

    def fetch_latest(self) -> tuple[bytes, ModelVersion]:
        """Step 5: the prediction pipeline fetches the newest model.

        Raises :class:`CorruptModelError` when the stored blob fails its
        integrity checks (truncation, bad magic, checksum mismatch).
        """
        if not self._latest:
            raise LookupError("no model has been published yet")
        return self.fetch(self._latest)

    def fetch(self, version: int) -> tuple[bytes, ModelVersion]:
        if version not in self._blobs:
            raise LookupError(f"no model version {version}")
        blob, record = self._blobs[version], self._versions[version]
        self._verify(blob, record)
        return blob, record

    def versions(self) -> list[ModelVersion]:
        return [self._versions[v] for v in sorted(self._versions)]

    @property
    def latest_version(self) -> int:
        return self._latest
