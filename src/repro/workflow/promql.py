"""A PromQL subset for querying the TSDB (Prometheus substitute, step 3).

The paper's prediction pipeline "monitors the running VNF via Prometheus
over HTTP" — i.e. it speaks PromQL. This module implements the slice of
the language the workflow needs, so monitoring code can be written exactly
as it would be against real Prometheus:

    cpu_usage{env="em-000001"}                    # instant vector
    cpu_usage{env="em-000001"}[30m]               # range vector
    avg_over_time(cpu_usage{env="em-000001"}[1h]) # aggregation over range
    rate(net_tx{env="em-000001"}[15m])            # per-second increase

Supported functions: ``avg_over_time``, ``max_over_time``,
``min_over_time``, ``sum_over_time``, ``count_over_time``, ``rate``.
Durations accept ``s``/``m``/``h``/``d`` suffixes. Matchers support exact
equality (``=``) and inequality (``!=``).

The implementation is a hand-written tokenizer + recursive-descent parser
producing a small AST, evaluated against a
:class:`~repro.workflow.tsdb.TimeSeriesDB` at a caller-supplied evaluation
time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .tsdb import Series, TimeSeriesDB

__all__ = [
    "PromQLError",
    "Selector",
    "RangeQuery",
    "FunctionCall",
    "InstantSample",
    "parse",
    "evaluate",
    "query",
]

RANGE_FUNCTIONS = (
    "avg_over_time",
    "max_over_time",
    "min_over_time",
    "sum_over_time",
    "count_over_time",
    "rate",
)

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


class PromQLError(ValueError):
    """Raised for syntax or evaluation errors, with position context."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Selector:
    """``metric{label="value", other!="value"}``."""

    metric: str
    equals: tuple[tuple[str, str], ...] = ()
    not_equals: tuple[tuple[str, str], ...] = ()

    def matches(self, series: Series) -> bool:
        if series.metric != self.metric:
            return False
        for name, value in self.equals:
            if series.labels.get(name) != value:
                return False
        for name, value in self.not_equals:
            if series.labels.get(name) == value:
                return False
        return True


@dataclass(frozen=True)
class RangeQuery:
    """``selector[duration]``."""

    selector: Selector
    window_seconds: float


@dataclass(frozen=True)
class FunctionCall:
    """``func(selector[duration])``."""

    function: str
    argument: RangeQuery


@dataclass(frozen=True)
class InstantSample:
    """One evaluated result: a label set and a value (and its timestamp)."""

    metric: str
    labels: dict[str, str] = field(hash=False)
    value: float = 0.0
    timestamp: float = 0.0


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<duration>\d+(?:\.\d+)?[smhd])
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_:][A-Za-z0-9_:]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ne>!=)
  | (?P<punct>[{}=\[\](),])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PromQLError(f"unexpected character {text[position]!r} at position {position}")
        kind = match.lastgroup
        if kind != "space":
            tokens.append(_Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PromQLError(f"unexpected end of query: {self.source!r}")
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._advance()
        if token.text != text:
            raise PromQLError(
                f"expected {text!r} at position {token.position}, found {token.text!r}"
            )
        return token

    def parse(self) -> Selector | RangeQuery | FunctionCall:
        expression = self._expression()
        leftover = self._peek()
        if leftover is not None:
            raise PromQLError(
                f"trailing input at position {leftover.position}: {leftover.text!r}"
            )
        return expression

    def _expression(self) -> Selector | RangeQuery | FunctionCall:
        token = self._advance()
        if token.kind != "ident":
            raise PromQLError(f"expected a metric or function at position {token.position}")
        if token.text in RANGE_FUNCTIONS and self._peek() and self._peek().text == "(":
            self._expect("(")
            argument = self._selector_maybe_range()
            if not isinstance(argument, RangeQuery):
                raise PromQLError(f"{token.text} requires a range vector, e.g. metric[5m]")
            self._expect(")")
            return FunctionCall(function=token.text, argument=argument)
        return self._selector_maybe_range(metric_token=token)

    def _selector_maybe_range(self, metric_token: _Token | None = None):
        token = metric_token if metric_token is not None else self._advance()
        if token.kind != "ident":
            raise PromQLError(f"expected a metric name at position {token.position}")
        equals: list[tuple[str, str]] = []
        not_equals: list[tuple[str, str]] = []
        nxt = self._peek()
        if nxt is not None and nxt.text == "{":
            self._advance()
            while True:
                name_token = self._advance()
                if name_token.kind != "ident":
                    raise PromQLError(
                        f"expected a label name at position {name_token.position}"
                    )
                op_token = self._advance()
                if op_token.text not in ("=", "!="):
                    raise PromQLError(
                        f"expected '=' or '!=' at position {op_token.position}"
                    )
                value_token = self._advance()
                if value_token.kind != "string":
                    raise PromQLError(
                        f"expected a quoted value at position {value_token.position}"
                    )
                value = value_token.text[1:-1].replace('\\"', '"')
                if op_token.text == "=":
                    equals.append((name_token.text, value))
                else:
                    not_equals.append((name_token.text, value))
                separator = self._advance()
                if separator.text == "}":
                    break
                if separator.text != ",":
                    raise PromQLError(
                        f"expected ',' or '}}' at position {separator.position}"
                    )
        selector = Selector(
            metric=token.text, equals=tuple(equals), not_equals=tuple(not_equals)
        )
        nxt = self._peek()
        if nxt is not None and nxt.text == "[":
            self._advance()
            duration_token = self._advance()
            if duration_token.kind != "duration":
                raise PromQLError(
                    f"expected a duration like 5m at position {duration_token.position}"
                )
            seconds = float(duration_token.text[:-1]) * _DURATION_UNITS[duration_token.text[-1]]
            self._expect("]")
            return RangeQuery(selector=selector, window_seconds=seconds)
        return selector


def parse(text: str) -> Selector | RangeQuery | FunctionCall:
    """Parse a query string into its AST."""
    if not text or not text.strip():
        raise PromQLError("empty query")
    return _Parser(_tokenize(text), text).parse()


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------
def _matching_series(db: TimeSeriesDB, selector: Selector) -> list[Series]:
    return [series for series in db.query(selector.metric) if selector.matches(series)]


def _apply_function(function: str, window: Series, window_seconds: float) -> float | None:
    values = np.asarray(window.values, dtype=np.float64)
    if values.size == 0:
        return None
    if function == "avg_over_time":
        return float(values.mean())
    if function == "max_over_time":
        return float(values.max())
    if function == "min_over_time":
        return float(values.min())
    if function == "sum_over_time":
        return float(values.sum())
    if function == "count_over_time":
        return float(values.size)
    if function == "rate":
        if values.size < 2:
            return None
        span = window.timestamps[-1] - window.timestamps[0]
        if span <= 0:
            return None
        return float((values[-1] - values[0]) / span)
    raise PromQLError(f"unknown function {function!r}")  # pragma: no cover


def evaluate(
    db: TimeSeriesDB,
    expression: Selector | RangeQuery | FunctionCall,
    at: float,
) -> list[InstantSample] | list[Series]:
    """Evaluate an AST against the TSDB at time ``at``.

    - ``Selector`` -> instant vector: the most recent sample at or before
      ``at`` for every matching series;
    - ``RangeQuery`` -> range vector: matching series restricted to
      ``(at - window, at]``;
    - ``FunctionCall`` -> instant vector of aggregated values.
    """
    if isinstance(expression, Selector):
        samples = []
        for series in _matching_series(db, expression):
            timestamps = np.asarray(series.timestamps)
            valid = np.flatnonzero(timestamps <= at)
            if valid.size == 0:
                continue
            last = int(valid[-1])
            samples.append(
                InstantSample(
                    metric=series.metric,
                    labels=dict(series.labels),
                    value=series.values[last],
                    timestamp=series.timestamps[last],
                )
            )
        return samples
    if isinstance(expression, RangeQuery):
        out = []
        for series in _matching_series(db, expression.selector):
            # Prometheus range semantics: (at - window, at] — the sample
            # exactly one window ago is excluded, the one at `at` included.
            window = series.range(at - expression.window_seconds + 1e-9, at + 1e-9)
            if len(window):
                out.append(window)
        return out
    if isinstance(expression, FunctionCall):
        samples = []
        windows = evaluate(db, expression.argument, at)
        for window in windows:
            value = _apply_function(
                expression.function, window, expression.argument.window_seconds
            )
            if value is None:
                continue
            samples.append(
                InstantSample(
                    metric=window.metric,
                    labels=dict(window.labels),
                    value=value,
                    timestamp=at,
                )
            )
        return samples
    raise PromQLError(f"cannot evaluate {type(expression).__name__}")


def query(db: TimeSeriesDB, text: str, at: float) -> list[InstantSample] | list[Series]:
    """Parse and evaluate in one call — the Prometheus HTTP API analogue."""
    return evaluate(db, parse(text), at)
