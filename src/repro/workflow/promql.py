"""A PromQL subset for querying the TSDB (Prometheus substitute, step 3).

The paper's prediction pipeline "monitors the running VNF via Prometheus
over HTTP" — i.e. it speaks PromQL. This module implements the slice of
the language the workflow needs, so monitoring code can be written exactly
as it would be against real Prometheus:

    cpu_usage{env="em-000001"}                    # instant vector
    cpu_usage{env="em-000001"}[30m]               # range vector
    avg_over_time(cpu_usage{env="em-000001"}[1h]) # aggregation over range
    rate(net_tx{env="em-000001"}[15m])            # per-second increase
    histogram_quantile(0.9, repro_prediction_run_seconds_bucket)

Supported functions: ``avg_over_time``, ``max_over_time``,
``min_over_time``, ``sum_over_time``, ``count_over_time``, ``rate`` —
plus ``histogram_quantile(q, <bucket vector>)`` over cumulative
``*_bucket`` series (as written by the observability exporter), accepting
either an instant bucket selector or ``rate(..._bucket[5m])``.
Durations accept ``s``/``m``/``h``/``d`` suffixes. Matchers support exact
equality (``=``) and inequality (``!=``).

The implementation is a hand-written tokenizer + recursive-descent parser
producing a small AST, evaluated against a
:class:`~repro.workflow.tsdb.TimeSeriesDB` at a caller-supplied evaluation
time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .tsdb import Series, TimeSeriesDB

__all__ = [
    "PromQLError",
    "Selector",
    "RangeQuery",
    "FunctionCall",
    "HistogramQuantile",
    "InstantSample",
    "parse",
    "evaluate",
    "query",
]

RANGE_FUNCTIONS = (
    "avg_over_time",
    "max_over_time",
    "min_over_time",
    "sum_over_time",
    "count_over_time",
    "rate",
)

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


class PromQLError(ValueError):
    """Raised for syntax or evaluation errors, with position context."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Selector:
    """``metric{label="value", other!="value"}``."""

    metric: str
    equals: tuple[tuple[str, str], ...] = ()
    not_equals: tuple[tuple[str, str], ...] = ()

    def matches(self, series: Series) -> bool:
        if series.metric != self.metric:
            return False
        for name, value in self.equals:
            if series.labels.get(name) != value:
                return False
        for name, value in self.not_equals:
            if series.labels.get(name) == value:
                return False
        return True


@dataclass(frozen=True)
class RangeQuery:
    """``selector[duration]``."""

    selector: Selector
    window_seconds: float


@dataclass(frozen=True)
class FunctionCall:
    """``func(selector[duration])``."""

    function: str
    argument: RangeQuery


@dataclass(frozen=True)
class HistogramQuantile:
    """``histogram_quantile(q, <instant vector of _bucket series>)``."""

    quantile: float
    argument: "Selector | FunctionCall"


@dataclass(frozen=True)
class InstantSample:
    """One evaluated result: a label set and a value (and its timestamp)."""

    metric: str
    labels: dict[str, str] = field(hash=False)
    value: float = 0.0
    timestamp: float = 0.0


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<duration>\d+(?:\.\d+)?[smhd])
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_:][A-Za-z0-9_:]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ne>!=)
  | (?P<punct>[{}=\[\](),])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PromQLError(f"unexpected character {text[position]!r} at position {position}")
        kind = match.lastgroup
        if kind != "space":
            tokens.append(_Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PromQLError(f"unexpected end of query: {self.source!r}")
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._advance()
        if token.text != text:
            raise PromQLError(
                f"expected {text!r} at position {token.position}, found {token.text!r}"
            )
        return token

    def parse(self) -> Selector | RangeQuery | FunctionCall | HistogramQuantile:
        expression = self._expression()
        leftover = self._peek()
        if leftover is not None:
            raise PromQLError(
                f"trailing input at position {leftover.position}: {leftover.text!r}"
            )
        return expression

    def _expression(self) -> Selector | RangeQuery | FunctionCall | HistogramQuantile:
        token = self._advance()
        if token.kind != "ident":
            raise PromQLError(f"expected a metric or function at position {token.position}")
        if token.text in RANGE_FUNCTIONS and self._peek() and self._peek().text == "(":
            self._expect("(")
            argument = self._selector_maybe_range()
            if not isinstance(argument, RangeQuery):
                raise PromQLError(f"{token.text} requires a range vector, e.g. metric[5m]")
            self._expect(")")
            return FunctionCall(function=token.text, argument=argument)
        if token.text == "histogram_quantile" and self._peek() and self._peek().text == "(":
            self._expect("(")
            quantile_token = self._advance()
            if quantile_token.kind != "number":
                raise PromQLError(
                    f"histogram_quantile needs a numeric quantile at position "
                    f"{quantile_token.position}"
                )
            quantile = float(quantile_token.text)
            if not 0.0 <= quantile <= 1.0:
                raise PromQLError(f"quantile must be in [0, 1]; got {quantile}")
            self._expect(",")
            argument = self._expression()
            if not isinstance(argument, (Selector, FunctionCall)):
                raise PromQLError(
                    "histogram_quantile requires an instant vector of _bucket series"
                )
            self._expect(")")
            return HistogramQuantile(quantile=quantile, argument=argument)
        return self._selector_maybe_range(metric_token=token)

    def _selector_maybe_range(self, metric_token: _Token | None = None):
        token = metric_token if metric_token is not None else self._advance()
        if token.kind != "ident":
            raise PromQLError(f"expected a metric name at position {token.position}")
        equals: list[tuple[str, str]] = []
        not_equals: list[tuple[str, str]] = []
        nxt = self._peek()
        if nxt is not None and nxt.text == "{":
            self._advance()
            while True:
                name_token = self._advance()
                if name_token.kind != "ident":
                    raise PromQLError(
                        f"expected a label name at position {name_token.position}"
                    )
                op_token = self._advance()
                if op_token.text not in ("=", "!="):
                    raise PromQLError(
                        f"expected '=' or '!=' at position {op_token.position}"
                    )
                value_token = self._advance()
                if value_token.kind != "string":
                    raise PromQLError(
                        f"expected a quoted value at position {value_token.position}"
                    )
                value = value_token.text[1:-1].replace('\\"', '"')
                if op_token.text == "=":
                    equals.append((name_token.text, value))
                else:
                    not_equals.append((name_token.text, value))
                separator = self._advance()
                if separator.text == "}":
                    break
                if separator.text != ",":
                    raise PromQLError(
                        f"expected ',' or '}}' at position {separator.position}"
                    )
        selector = Selector(
            metric=token.text, equals=tuple(equals), not_equals=tuple(not_equals)
        )
        nxt = self._peek()
        if nxt is not None and nxt.text == "[":
            self._advance()
            duration_token = self._advance()
            if duration_token.kind != "duration":
                raise PromQLError(
                    f"expected a duration like 5m at position {duration_token.position}"
                )
            seconds = float(duration_token.text[:-1]) * _DURATION_UNITS[duration_token.text[-1]]
            self._expect("]")
            return RangeQuery(selector=selector, window_seconds=seconds)
        return selector


def parse(text: str) -> Selector | RangeQuery | FunctionCall | HistogramQuantile:
    """Parse a query string into its AST."""
    if not text or not text.strip():
        raise PromQLError("empty query")
    return _Parser(_tokenize(text), text).parse()


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------
def _matching_series(db: TimeSeriesDB, selector: Selector) -> list[Series]:
    return [series for series in db.query(selector.metric) if selector.matches(series)]


def _apply_function(function: str, window: Series, window_seconds: float) -> float | None:
    values = np.asarray(window.values, dtype=np.float64)
    if values.size == 0:
        return None
    if function == "avg_over_time":
        return float(values.mean())
    if function == "max_over_time":
        return float(values.max())
    if function == "min_over_time":
        return float(values.min())
    if function == "sum_over_time":
        return float(values.sum())
    if function == "count_over_time":
        return float(values.size)
    if function == "rate":
        if values.size < 2:
            return None
        span = window.timestamps[-1] - window.timestamps[0]
        if span <= 0:
            return None
        return float((values[-1] - values[0]) / span)
    raise PromQLError(f"unknown function {function!r}")  # pragma: no cover


def _bucket_quantile(quantile: float, bounds: np.ndarray, counts: np.ndarray) -> float | None:
    """Prometheus-style linear interpolation inside cumulative buckets.

    ``bounds`` are the finite ``le`` upper bounds plus ``inf`` last;
    ``counts`` are the matching cumulative counts (or cumulative rates —
    the algorithm only needs monotone-in-le mass).
    """
    # Guard against scrape skew: cumulative counts must not decrease in le.
    counts = np.maximum.accumulate(counts)
    total = counts[-1]
    if total <= 0:
        return None
    target = quantile * total
    index = int(np.searchsorted(counts, target, side="left"))
    if index >= len(bounds) - 1:
        # Mass beyond the largest finite bound: report that bound (there
        # is no upper edge to interpolate toward in the +Inf bucket).
        return float(bounds[-2]) if len(bounds) >= 2 else None
    upper = float(bounds[index])
    lower = float(bounds[index - 1]) if index > 0 else min(0.0, upper)
    count_upper = float(counts[index])
    count_lower = float(counts[index - 1]) if index > 0 else 0.0
    if count_upper == count_lower:
        return upper
    return lower + (upper - lower) * (target - count_lower) / (count_upper - count_lower)


def _evaluate_histogram_quantile(
    db: TimeSeriesDB, expression: HistogramQuantile, at: float
) -> list[InstantSample]:
    inner = evaluate(db, expression.argument, at)
    groups: dict[tuple, tuple[str, dict[str, str], list[tuple[float, float]]]] = {}
    for sample in inner:
        if "le" not in sample.labels:
            raise PromQLError(
                f"histogram_quantile needs _bucket series with an 'le' label; "
                f"{sample.metric} has labels {sorted(sample.labels)}"
            )
        labels = {k: v for k, v in sample.labels.items() if k != "le"}
        le = float("inf") if sample.labels["le"] == "+Inf" else float(sample.labels["le"])
        key = (sample.metric, tuple(sorted(labels.items())))
        if key not in groups:
            metric = sample.metric
            if metric.endswith("_bucket"):
                metric = metric[: -len("_bucket")]
            groups[key] = (metric, labels, [])
        groups[key][2].append((le, sample.value))
    out = []
    for metric, labels, buckets in groups.values():
        buckets.sort()
        bounds = np.asarray([b for b, _ in buckets], dtype=np.float64)
        counts = np.asarray([c for _, c in buckets], dtype=np.float64)
        if bounds[-1] != float("inf"):
            continue  # incomplete histogram: no +Inf bucket at this instant
        value = _bucket_quantile(expression.quantile, bounds, counts)
        if value is None:
            continue
        out.append(InstantSample(metric=metric, labels=labels, value=value, timestamp=at))
    return out


def evaluate(
    db: TimeSeriesDB,
    expression: Selector | RangeQuery | FunctionCall | HistogramQuantile,
    at: float,
) -> list[InstantSample] | list[Series]:
    """Evaluate an AST against the TSDB at time ``at``.

    - ``Selector`` -> instant vector: the most recent sample at or before
      ``at`` for every matching series;
    - ``RangeQuery`` -> range vector: matching series restricted to
      ``(at - window, at]``;
    - ``FunctionCall`` -> instant vector of aggregated values;
    - ``HistogramQuantile`` -> instant vector of interpolated quantiles,
      one per bucket group (grouped by labels minus ``le``).
    """
    if isinstance(expression, Selector):
        samples = []
        for series in _matching_series(db, expression):
            timestamps = np.asarray(series.timestamps)
            valid = np.flatnonzero(timestamps <= at)
            if valid.size == 0:
                continue
            last = int(valid[-1])
            samples.append(
                InstantSample(
                    metric=series.metric,
                    labels=dict(series.labels),
                    value=series.values[last],
                    timestamp=series.timestamps[last],
                )
            )
        return samples
    if isinstance(expression, RangeQuery):
        out = []
        for series in _matching_series(db, expression.selector):
            # Prometheus range semantics: (at - window, at] — the sample
            # exactly one window ago is excluded, the one at `at` included.
            window = series.range(at - expression.window_seconds + 1e-9, at + 1e-9)
            if len(window):
                out.append(window)
        return out
    if isinstance(expression, FunctionCall):
        samples = []
        windows = evaluate(db, expression.argument, at)
        for window in windows:
            value = _apply_function(
                expression.function, window, expression.argument.window_seconds
            )
            if value is None:
                continue
            samples.append(
                InstantSample(
                    metric=window.metric,
                    labels=dict(window.labels),
                    value=value,
                    timestamp=at,
                )
            )
        return samples
    if isinstance(expression, HistogramQuantile):
        return _evaluate_histogram_quantile(db, expression, at)
    raise PromQLError(f"cannot evaluate {type(expression).__name__}")


def query(db: TimeSeriesDB, text: str, at: float) -> list[InstantSample] | list[Series]:
    """Parse and evaluate in one call — the Prometheus HTTP API analogue."""
    return evaluate(db, parse(text), at)
