"""Prediction pipeline (paper §3, workflow steps 3-5).

Step 5: fetch the latest model from the training pipeline's store.
Step 3: read the running testbed's data, construct the Table 2 dataframe
(CFs + EM + RU history + observed RU), infer RU with the model, and compare
against the observation.
Step 4: on significant deviations (gamma·sigma rule + 5% absolute filter),
push alarms — testbed, interval, peak deviation — into the alarm store.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.anomaly import AnomalyReport, ContextualAnomalyDetector, GaussianErrorModel
from ..core.model import Env2VecRegressor
from ..data.chains import BuildChain, TestExecution
from ..data.environment import Environment
from ..data.frame import Frame
from ..data.windows import build_windows
from ..obs import get_observability
from ..resilience import ExecutionQuarantined
from .alarms import AlarmStore
from .model_store import CorruptModelError, ModelStore
from .tsdb import AmbiguousSeries, SeriesNotFound

__all__ = [
    "PredictionPipeline",
    "PredictBatch",
    "PipelineRun",
    "SkippedExecution",
    "build_prediction_frame",
]

_OBS = get_observability()
_H_RUN = _OBS.histogram(
    "repro_prediction_run_seconds",
    "End-to-end latency of one prediction-pipeline run (windowing, "
    "inference, detection, alarm pushes).",
)
_M_RUNS = _OBS.counter(
    "repro_prediction_runs_total", "Prediction-pipeline runs executed."
)
_M_WINDOWS = _OBS.counter(
    "repro_prediction_windows_total",
    "History windows (timesteps) scored by the prediction pipeline.",
)
_M_ALARMS = _OBS.counter(
    "repro_alarms_raised_total", "Alarms pushed to the alarm store by pipeline runs."
)
_M_CACHE_HITS = _OBS.counter(
    "repro_model_cache_hits_total",
    "Model fetches answered by the version-keyed cache.",
)
_M_CACHE_MISSES = _OBS.counter(
    "repro_model_cache_misses_total",
    "Model fetches that deserialized and compiled a published blob.",
)
_M_SKIPS = _OBS.counter(
    "repro_resilience_executions_skipped_total",
    "Executions the prediction pipeline skipped instead of crashing on.",
    labels=("reason",),
)
_M_FALLBACKS = _OBS.counter(
    "repro_resilience_model_fallbacks_total",
    "Fetches served by the cached last-good model after a corrupt blob.",
)
_M_ROW_FAILURES = _OBS.counter(
    "repro_prediction_row_failures_total",
    "Executions that failed scoring and were isolated from their batchmates.",
)


def build_prediction_frame(
    execution: TestExecution, n_lags: int, feature_names: list[str] | None = None
) -> Frame:
    """The Table 2 dataframe: CFs, EM columns, RU-history lags, observed RU.

    Rows correspond to timesteps with a full history window (the first
    ``n_lags`` timesteps are dropped).
    """
    X, history, y = build_windows(execution.features, execution.cpu, n_lags)
    names = feature_names or [f"feature_{i:02d}" for i in range(X.shape[1])]
    if len(names) != X.shape[1]:
        raise ValueError(f"{len(names)} feature names for {X.shape[1]} feature columns")
    frame = Frame({name: X[:, i] for i, name in enumerate(names)})
    for field, value in execution.environment.as_dict().items():
        frame[field] = np.full(len(frame), value, dtype=object)
    for lag in range(1, n_lags + 1):
        # history columns are oldest-first; cpu_t_minus_1 is the last one.
        frame[f"cpu_t_minus_{lag}"] = history[:, n_lags - lag]
    frame["cpu_usage"] = y
    return frame


@dataclass(frozen=True)
class PredictBatch:
    """The one prediction request shape every entry point consumes.

    ``PredictionPipeline.run`` (one execution), ``run_many`` (a fleet) and
    the ``repro.serve`` request path all used to carry their own argument
    conventions; they now converge on this type and
    :meth:`PredictionPipeline.execute`. ``error_models`` aligns one
    :class:`~repro.core.anomaly.GaussianErrorModel` (or ``None`` for the
    §4.3 self-calibrated mode) with each execution; ``None`` means
    self-calibrated throughout.
    """

    executions: tuple[TestExecution, ...]
    error_models: tuple | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "executions", tuple(self.executions))
        if self.error_models is not None:
            object.__setattr__(self, "error_models", tuple(self.error_models))
            if len(self.error_models) != len(self.executions):
                raise ValueError(
                    f"error_models must align with executions: got "
                    f"{len(self.error_models)} for {len(self.executions)}"
                )

    def __len__(self) -> int:
        return len(self.executions)

    def aligned_error_models(self) -> tuple:
        """One entry per execution, ``None``-filled when omitted."""
        if self.error_models is None:
            return (None,) * len(self.executions)
        return self.error_models


@dataclass(repr=False)
class PipelineRun:
    """Everything one pipeline execution produced."""

    report: AnomalyReport
    predictions: np.ndarray
    observations: np.ndarray
    model_version: int
    alarm_ids: list[int]
    terminated_early: bool

    def __repr__(self) -> str:
        # Deliberately compact: the default dataclass repr stringifies the
        # full prediction arrays, which asyncio's future/task reprs then
        # render per request — measurably dominating the serve hot path.
        return (
            f"PipelineRun(model_version={self.model_version}, "
            f"windows={len(self.observations)}, alarm_ids={self.alarm_ids}, "
            f"terminated_early={self.terminated_early})"
        )


@dataclass(frozen=True)
class SkippedExecution:
    """A typed skip-with-reason: the pipeline could not monitor this one.

    Returned (never raised) by :meth:`PredictionPipeline.run_from_tsdb`
    when the telemetry behind an execution is missing, ambiguous, or
    quarantined — monitoring one execution must not crash the day.
    """

    reason: str
    detail: str = ""

    @property
    def skipped(self) -> bool:
        return True


class PredictionPipeline:
    def __init__(
        self,
        store: ModelStore,
        alarms: AlarmStore,
        gamma: float = 2.0,
        abs_threshold: float = 5.0,
        termination_threshold: int | None = None,
    ):
        self.store = store
        self.alarms = alarms
        self.detector = ContextualAnomalyDetector(gamma=gamma, abs_threshold=abs_threshold)
        self.termination_threshold = termination_threshold
        self._model_cache: tuple[int, Env2VecRegressor] | None = None

    def _fetch_model(self) -> tuple[Env2VecRegressor, int]:
        """Latest model, deserialized and compiled once per published version.

        ``calibrate``/``run``/``report`` each fetch the model; without the
        version-keyed cache every call re-parsed the npz blob and rebuilt the
        network. The cached regressor carries its compiled inference engine,
        so repeated monitoring calls skip both deserialization and compile.

        The cache doubles as the *last-good* model: when the newest
        published blob is corrupt (:class:`CorruptModelError`), monitoring
        keeps serving the cached version instead of going dark. Only a
        corrupt blob with no prior good model propagates the error.
        """
        if self._model_cache is not None and self._model_cache[0] == self.store.latest_version:
            _M_CACHE_HITS.inc()
            return self._model_cache[1], self._model_cache[0]
        try:
            blob, version = self.store.fetch_latest()
            model = Env2VecRegressor.from_bytes(blob)
        except CorruptModelError:
            if self._model_cache is None:
                raise
            _M_FALLBACKS.inc()
            return self._model_cache[1], self._model_cache[0]
        _M_CACHE_MISSES.inc()
        model.compile()
        self._model_cache = (version.version, model)
        return model, version.version

    def calibrate(self, chain: BuildChain) -> GaussianErrorModel:
        """Fit the normal-error Gaussian over a chain's historical builds."""
        model, _ = self._fetch_model()
        errors = []
        for execution in chain.history:
            predicted, observed = self._predict_execution(model, execution)
            errors.append(predicted - observed)
        if not errors:
            raise ValueError("chain has no historical executions to calibrate on")
        return GaussianErrorModel.fit(np.concatenate(errors))

    def run(
        self,
        execution: TestExecution,
        error_model: GaussianErrorModel | None = None,
    ) -> PipelineRun:
        """Deprecated alias: monitor one test execution.

        Build a single-execution :class:`PredictBatch` and call
        :meth:`execute` instead. Results are byte-identical to the
        canonical call; only the request shape changed.
        """
        warnings.warn(
            "PredictionPipeline.run is deprecated; wrap the execution in a "
            "PredictBatch and call execute() (or go through repro.serve)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(PredictBatch((execution,), (error_model,)))[0]

    def run_many(
        self,
        executions: list[TestExecution],
        error_models: list[GaussianErrorModel | None] | None = None,
        n_workers: int = 1,
        worker_kind: str = "threads",
    ) -> list[PipelineRun]:
        """Deprecated alias: monitor a fleet of executions.

        Build a :class:`PredictBatch` and call :meth:`execute` instead.
        Results are byte-identical to the canonical call; only the
        request shape changed.
        """
        warnings.warn(
            "PredictionPipeline.run_many is deprecated; wrap the executions "
            "in a PredictBatch and call execute() (or go through repro.serve)",
            DeprecationWarning,
            stacklevel=2,
        )
        batch = PredictBatch(
            tuple(executions),
            tuple(error_models) if error_models is not None else None,
        )
        return self.execute(batch, n_workers=n_workers, worker_kind=worker_kind)

    def execute(
        self,
        batch: PredictBatch,
        *,
        n_workers: int = 1,
        worker_kind: str = "threads",
        model: Env2VecRegressor | None = None,
        model_version: int | None = None,
    ) -> list[PipelineRun]:
        """Monitor a :class:`PredictBatch` sharing one model version.

        The single canonical prediction entry point (the legacy ``run`` /
        ``run_many`` signatures are thin aliases over it): the model is
        fetched once, window construction and forwards are coalesced into
        batched predict calls per worker (bitwise identical to
        per-execution predicts — every kernel is row-wise), and detection
        fans out over a :class:`~repro.parallel.WorkerPool`. Side effects
        merge back deterministically: alarms are pushed serially in input
        order, so alarm ids, store contents, and every returned
        :class:`PipelineRun` are byte-identical to the serial loop — and
        independent of how callers slice a workload into batches, which is
        what lets the ``repro.serve`` micro-batcher coalesce concurrent
        requests freely.

        ``model``/``model_version`` inject an already-fetched model (the
        serve layer's warm pool); by default the latest published version
        is fetched through the version-keyed cache. Executions must be
        long enough to window (``n_timesteps > n_lags + 1``).
        """
        from ..parallel import WorkerPool, split_round_robin

        executions = list(batch.executions)
        error_models = list(batch.aligned_error_models())
        if not executions:
            return []
        if model is not None and model_version is None:
            raise ValueError("model_version must accompany an injected model")
        # One latency observation for the whole batch (a per-execution
        # observation would misrepresent the coalesced forwards).
        with _H_RUN.time(), _OBS.span("predict.execute"):
            if model is None:
                model, model_version = self._fetch_model()
            version = model_version
            model.ensure_compiled()
            indexed = list(enumerate(executions))

            def score_chunk(chunk: list[tuple[int, TestExecution]]):
                results = self.score_executions(
                    model,
                    [execution for _, execution in chunk],
                    [error_models[index] for index, _ in chunk],
                )
                return [
                    (index, report, pred, observed)
                    for (index, _), (report, pred, observed) in zip(chunk, results)
                ]

            with WorkerPool(n_workers, kind=worker_kind) as pool:
                chunk_results = pool.map(
                    score_chunk,
                    [c for c in split_round_robin(indexed, pool.n_workers) if c],
                )
            scored: list = [None] * len(executions)
            for chunk in chunk_results:
                for index, report, pred, observed in chunk:
                    scored[index] = (report, pred, observed)
            runs = self.fan_in(
                executions, scored, model_version=version, n_lags=model.n_lags
            )
        return runs

    def score_executions(
        self,
        model: Env2VecRegressor,
        executions: list[TestExecution],
        error_models: list[GaussianErrorModel | None] | None = None,
    ) -> list[tuple[AnomalyReport, np.ndarray, np.ndarray]]:
        """Pure scoring: windows, one coalesced forward, grouped detection.

        No side effects — no alarm pushes, no metrics, no store reads —
        which is what lets the serve supervisor run it inside worker
        processes and apply :meth:`fan_in` back on the parent in dispatch
        order. Returns one ``(report, predictions, observations)`` triple
        per execution, in input order. The coalesced forward is bitwise
        identical to per-execution predicts because every compiled kernel
        is row-wise.
        """
        if error_models is None:
            error_models = [None] * len(executions)
        windows = [
            build_windows(execution.features, execution.cpu, model.n_lags)
            for execution in executions
        ]
        environments: list = []
        for execution, (_, _, y) in zip(executions, windows):
            environments.extend([execution.environment] * len(y))
        predicted = model.predict(
            environments,
            np.concatenate([X for X, _, _ in windows], axis=0),
            np.concatenate([h for _, h, _ in windows], axis=0),
        )
        predicted_rows, observed_rows, start = [], [], 0
        for _, _, observed in windows:
            predicted_rows.append(predicted[start : start + len(observed)])
            observed_rows.append(observed)
            start += len(observed)
        reports = self.detector.detect_many(predicted_rows, observed_rows, error_models)
        return list(zip(reports, predicted_rows, observed_rows))

    def score_with_isolation(
        self,
        model: Env2VecRegressor,
        executions: list[TestExecution],
        error_models: list[GaussianErrorModel | None] | None = None,
    ) -> list[tuple]:
        """Score a batch, isolating per-row failures from batchmates.

        The fast path is one coalesced :meth:`score_executions`; if
        anything in the batch raises, every row is rescored alone —
        bitwise identical to the coalesced pass, since every kernel is
        row-wise — so one malformed execution fails only itself. Returns
        one outcome per execution, in order: ``("ok", report,
        predictions, observations)`` or ``("err", message)``.
        """
        executions = list(executions)
        if error_models is None:
            error_models = [None] * len(executions)
        try:
            return [
                ("ok", report, pred, observed)
                for report, pred, observed in self.score_executions(
                    model, executions, error_models
                )
            ]
        except Exception:
            outcomes: list[tuple] = []
            for execution, error_model in zip(executions, error_models):
                try:
                    (triple,) = self.score_executions(model, [execution], [error_model])
                    outcomes.append(("ok", *triple))
                except Exception as error:
                    _M_ROW_FAILURES.inc()
                    outcomes.append(("err", f"{type(error).__name__}: {error}"))
            return outcomes

    def fan_in(
        self,
        executions: list[TestExecution],
        scored: list[tuple[AnomalyReport, np.ndarray, np.ndarray]],
        *,
        model_version: int,
        n_lags: int,
    ) -> list[PipelineRun]:
        """Apply a batch's side effects serially, in input order.

        Alarm pushes, termination checks, and run metrics happen here and
        only here, so alarm ids, store contents, and every returned
        :class:`PipelineRun` come out exactly as a sequential loop would
        produce them — regardless of which worker (thread or process)
        scored which row, or in what order scoring finished.
        """
        runs: list[PipelineRun] = []
        offset = n_lags
        for execution, (report, pred, observed) in zip(executions, scored):
            alarm_ids = [
                self.alarms.push(
                    environment=execution.environment,
                    start_step=alarm.start + offset,
                    end_step=alarm.end + offset,
                    peak_deviation=alarm.peak_deviation,
                    gamma=report.gamma,
                )
                for alarm in report.alarms
            ]
            terminated = (
                self.termination_threshold is not None
                and self.alarms.should_terminate(
                    execution.environment, threshold=self.termination_threshold
                )
            )
            _M_RUNS.inc()
            _M_WINDOWS.inc(len(observed))
            _M_ALARMS.inc(len(alarm_ids))
            runs.append(
                PipelineRun(
                    report=report,
                    predictions=pred,
                    observations=observed,
                    model_version=model_version,
                    alarm_ids=alarm_ids,
                    terminated_early=terminated,
                )
            )
        return runs

    def run_from_tsdb(
        self,
        collector,
        record_id: str,
        environment: Environment,
        error_model: GaussianErrorModel | None = None,
    ) -> PipelineRun | SkippedExecution:
        """Monitor an execution straight from the TSDB (step 3 for real).

        Reads the series back through ``collector.read_back`` and runs the
        normal pipeline on the reconstruction. Degraded telemetry —
        missing series, ambiguous selectors, quarantined executions —
        yields a :class:`SkippedExecution` naming the reason instead of
        propagating a crash into the caller's day loop.
        """
        try:
            features, cpu = collector.read_back(record_id)
        except SeriesNotFound as exc:
            _M_SKIPS.labels(reason="series_missing").inc()
            return SkippedExecution(reason="series_missing", detail=str(exc))
        except AmbiguousSeries as exc:
            _M_SKIPS.labels(reason="ambiguous_series").inc()
            return SkippedExecution(reason="ambiguous_series", detail=str(exc))
        except ExecutionQuarantined as exc:
            _M_SKIPS.labels(reason=exc.reason).inc()
            return SkippedExecution(reason=exc.reason, detail=exc.detail)
        execution = TestExecution(environment=environment, features=features, cpu=cpu)
        return self.execute(PredictBatch((execution,), (error_model,)))[0]

    def report(self, execution: TestExecution, run: PipelineRun, width: int = 72) -> str:
        """Render the engineer-facing report for a completed run (step 4)."""
        from .reporting import execution_report

        model, _ = self._fetch_model()
        return execution_report(execution, run.report, n_lags=model.n_lags, width=width)

    @staticmethod
    def _predict_execution(
        model: Env2VecRegressor, execution: TestExecution
    ) -> tuple[np.ndarray, np.ndarray]:
        X, history, y = build_windows(execution.features, execution.cpu, model.n_lags)
        environments = [execution.environment] * len(y)
        return model.predict(environments, X, history), y
