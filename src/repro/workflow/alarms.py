"""Alarm store (paper §3, workflow step 4 — PostgreSQL substitute).

"Upon detecting anomalies, Env2Vec pushes an alarm into a PostgreSQL
database. This alarm contains all the relevant information to allow a
testing engineer who triggered the test case execution to pinpoint on
which testbed the issue occurred, and during which time interval."

PostgreSQL is unavailable offline; the store is backed by sqlite3 (stdlib),
which preserves the SQL schema, the persistence, and the query patterns.
Alarms can also drive automated actions such as early termination — see
:meth:`AlarmStore.should_terminate`.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from pathlib import Path

from ..data.environment import Environment

__all__ = ["AlarmRecord", "AlarmStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS alarms (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    testbed TEXT NOT NULL,
    sut TEXT NOT NULL,
    testcase TEXT NOT NULL,
    build TEXT NOT NULL,
    start_step INTEGER NOT NULL,
    end_step INTEGER NOT NULL,
    peak_deviation REAL NOT NULL,
    gamma REAL NOT NULL,
    created_at REAL NOT NULL,
    acknowledged INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_alarms_testbed ON alarms (testbed);
CREATE INDEX IF NOT EXISTS idx_alarms_build ON alarms (build);
"""


@dataclass(frozen=True)
class AlarmRecord:
    """One persisted alarm, as a testing engineer would query it."""

    alarm_id: int
    environment: Environment
    start_step: int
    end_step: int
    peak_deviation: float
    gamma: float
    created_at: float
    acknowledged: bool

    @property
    def interval(self) -> tuple[int, int]:
        return (self.start_step, self.end_step)


class AlarmStore:
    """SQL-backed alarm persistence with the paper's query patterns."""

    def __init__(self, path: str | Path = ":memory:"):
        self._conn = sqlite3.connect(str(path))
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        row = self._conn.execute("SELECT MAX(created_at) FROM alarms").fetchone()
        self._logical_time = int(row[0]) if row and row[0] is not None else 0

    def _next_logical_time(self) -> float:
        self._logical_time += 1
        return float(self._logical_time)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "AlarmStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writes ---------------------------------------------------------
    def push(
        self,
        environment: Environment,
        start_step: int,
        end_step: int,
        peak_deviation: float,
        gamma: float,
        created_at: float | None = None,
    ) -> int:
        """Insert one alarm; returns its id.

        ``created_at`` defaults to a logical per-store sequence number
        (1, 2, 3, ...). A wall-clock default here (REP002) leaked real
        time into campaign reports and broke same-seed byte-identity;
        callers that need real timestamps pass them explicitly.
        """
        if not 0 <= start_step < end_step:
            raise ValueError("need 0 <= start_step < end_step")
        cursor = self._conn.execute(
            "INSERT INTO alarms (testbed, sut, testcase, build, start_step, end_step,"
            " peak_deviation, gamma, created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                environment.testbed,
                environment.sut,
                environment.testcase,
                environment.build,
                start_step,
                end_step,
                float(peak_deviation),
                float(gamma),
                created_at if created_at is not None else self._next_logical_time(),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def acknowledge(self, alarm_id: int) -> None:
        cursor = self._conn.execute(
            "UPDATE alarms SET acknowledged = 1 WHERE id = ?", (alarm_id,)
        )
        if cursor.rowcount == 0:
            raise KeyError(f"no alarm with id {alarm_id}")
        self._conn.commit()

    # -- queries -----------------------------------------------------------
    def fetch(
        self,
        testbed: str | None = None,
        build: str | None = None,
        environment: Environment | None = None,
        unacknowledged_only: bool = False,
    ) -> list[AlarmRecord]:
        clauses, params = [], []
        if environment is not None:
            for column, value in environment.as_dict().items():
                clauses.append(f"{column} = ?")
                params.append(value)
        if testbed is not None:
            clauses.append("testbed = ?")
            params.append(testbed)
        if build is not None:
            clauses.append("build = ?")
            params.append(build)
        if unacknowledged_only:
            clauses.append("acknowledged = 0")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT id, testbed, sut, testcase, build, start_step, end_step,"
            f" peak_deviation, gamma, created_at, acknowledged FROM alarms{where}"
            " ORDER BY id",
            params,
        ).fetchall()
        return [self._to_record(row) for row in rows]

    def count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM alarms").fetchone()[0])

    def should_terminate(self, environment: Environment, threshold: int = 3) -> bool:
        """Automated action hook: terminate a test early after N alarms.

        §3 step 4: "Such alarms can also trigger automated actions, such as
        early termination of the test case execution."
        """
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        row = self._conn.execute(
            "SELECT COUNT(*) FROM alarms WHERE testbed = ? AND sut = ? AND testcase = ?"
            " AND build = ?",
            environment.as_tuple(),
        ).fetchone()
        return int(row[0]) >= threshold

    @staticmethod
    def _to_record(row: tuple) -> AlarmRecord:
        return AlarmRecord(
            alarm_id=int(row[0]),
            environment=Environment(row[1], row[2], row[3], row[4]),
            start_step=int(row[5]),
            end_step=int(row[6]),
            peak_deviation=float(row[7]),
            gamma=float(row[8]),
            created_at=float(row[9]),
            acknowledged=bool(row[10]),
        )
