"""The VNF testing workflow of the paper's Figure 2.

Workflow steps (§3) and their modules:

1. **Testbed data collection** — :mod:`~repro.workflow.collector` replays
   test executions into the :mod:`~repro.workflow.tsdb` TSDB (Prometheus
   substitute) with EM labels, registering endpoints in the
   :mod:`~repro.workflow.discovery` service-discovery JSON.
2. **Model training** — :mod:`~repro.workflow.training_pipeline` masks
   flagged executions, trains the single Env2Vec model daily, and publishes
   it to the :mod:`~repro.workflow.model_store`.
3. **Prediction pipeline** — :mod:`~repro.workflow.prediction_pipeline`
   builds the Table 2 dataframe and compares inferred vs observed RU.
4. **Raising alarms** — :mod:`~repro.workflow.alarms` (sqlite-backed
   PostgreSQL substitute) persists testbed + interval + deviation.
5. **Updating the model** — the prediction pipeline fetches the latest
   published model before each run.
"""

from .alarms import AlarmRecord, AlarmStore
from .checkpoint import CampaignState, checkpoint_days, load_latest_checkpoint, save_checkpoint
from .collector import MetricCollector, RU_METRIC, SAMPLE_INTERVAL_SECONDS
from .drift import DriftDecision, DriftMonitor, PageHinkley
from .discovery import EMRegistry, ServiceDiscovery
from .model_store import CorruptModelError, ModelStore, ModelVersion
from .orchestrator import DayReport, TestingCampaign
from .reporting import campaign_summary, execution_report, observability_summary, sparkline
from .promql import (
    HistogramQuantile,
    InstantSample,
    PromQLError,
    parse as parse_promql,
    query as promql_query,
)
from .prediction_pipeline import (
    PipelineRun,
    PredictBatch,
    PredictionPipeline,
    SkippedExecution,
    build_prediction_frame,
)
from .training_pipeline import TrainingPipeline, TrainingResult
from .tsdb import AmbiguousSeries, Sample, Series, SeriesNotFound, TimeSeriesDB

__all__ = [
    "TimeSeriesDB",
    "Series",
    "Sample",
    "SeriesNotFound",
    "AmbiguousSeries",
    "ServiceDiscovery",
    "EMRegistry",
    "MetricCollector",
    "RU_METRIC",
    "SAMPLE_INTERVAL_SECONDS",
    "AlarmStore",
    "AlarmRecord",
    "ModelStore",
    "ModelVersion",
    "CorruptModelError",
    "TestingCampaign",
    "DayReport",
    "CampaignState",
    "save_checkpoint",
    "load_latest_checkpoint",
    "checkpoint_days",
    "promql_query",
    "parse_promql",
    "PromQLError",
    "InstantSample",
    "HistogramQuantile",
    "execution_report",
    "campaign_summary",
    "observability_summary",
    "sparkline",
    "DriftMonitor",
    "PageHinkley",
    "DriftDecision",
    "TrainingPipeline",
    "TrainingResult",
    "PredictionPipeline",
    "PredictBatch",
    "PipelineRun",
    "SkippedExecution",
    "build_prediction_frame",
]
