"""Engineer-facing test reports (the human end of workflow step 4).

The alarm "contains all the relevant information to allow a testing
engineer ... to pinpoint on which testbed the issue occurred, and during
which time interval". This module turns a monitored execution into the
report an engineer would read: a header with the environment, a CPU
sparkline with the flagged intervals marked, and the alarm list — plus a
campaign-level summary across chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.anomaly import AnomalyReport
from ..data.chains import TestExecution
from ..obs import get_observability
from .alarms import AlarmRecord, AlarmStore
from .promql import PromQLError, query as promql_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from .orchestrator import TestingCampaign

__all__ = ["sparkline", "execution_report", "campaign_summary", "observability_summary"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Compress a series into a one-line unicode sparkline."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot sparkline an empty series")
    if width < 1:
        raise ValueError("width must be >= 1")
    if values.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    low, high = values.min(), values.max()
    span = high - low or 1.0
    indices = ((values - low) / span * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in indices)


def _interval_ruler(n_timesteps: int, intervals: list[tuple[int, int]], width: int = 72) -> str:
    """A ruler line marking flagged intervals under the sparkline."""
    ruler = [" "] * min(n_timesteps, width)
    scale = len(ruler) / n_timesteps
    for start, end in intervals:
        a = int(start * scale)
        b = max(a + 1, int(end * scale))
        for i in range(a, min(b, len(ruler))):
            ruler[i] = "^"
    return "".join(ruler)


def execution_report(
    execution: TestExecution,
    report: AnomalyReport,
    n_lags: int,
    width: int = 72,
) -> str:
    """The per-execution report: environment, sparkline, alarms."""
    env = execution.environment
    intervals = [(a.start + n_lags, a.end + n_lags) for a in report.alarms]
    lines = [
        f"TEST REPORT — {env.testbed} | {env.sut} | {env.testcase} | build {env.build}",
        f"{execution.n_timesteps} timesteps @ 15 min | "
        f"CPU mean {execution.cpu.mean():.1f}% (min {execution.cpu.min():.1f}, "
        f"max {execution.cpu.max():.1f})",
        "",
        "CPU  " + sparkline(execution.cpu, width),
        "     " + _interval_ruler(execution.n_timesteps, intervals, width),
        "",
    ]
    if report.alarms:
        lines.append(f"{report.n_alarms} alarm(s) at γ={report.gamma:g}:")
        for i, alarm in enumerate(report.alarms, start=1):
            start, end = alarm.start + n_lags, alarm.end + n_lags
            hours = (end - start) * 0.25
            lines.append(
                f"  #{i}: timesteps [{start}, {end}) (~{hours:.1f} h) — "
                f"peak deviation {alarm.peak_deviation:.1f}% CPU"
            )
        lines.append("")
        lines.append("ACTION: investigate the flagged interval(s) before promoting this build.")
    else:
        lines.append(f"no alarms at γ={report.gamma:g} — build behaves like its predecessors.")
    return "\n".join(lines)


def campaign_summary(store: AlarmStore, width: int = 72) -> str:
    """Roll up the alarm store by testbed — the team dashboard view."""
    records = store.fetch()
    if not records:
        return "no alarms recorded."
    by_testbed: dict[str, list[AlarmRecord]] = {}
    for record in records:
        by_testbed.setdefault(record.environment.testbed, []).append(record)
    lines = [f"ALARM SUMMARY — {len(records)} alarms across {len(by_testbed)} testbeds", ""]
    peak = max(len(v) for v in by_testbed.values())
    for testbed in sorted(by_testbed, key=lambda t: -len(by_testbed[t])):
        testbed_records = by_testbed[testbed]
        bar = "#" * max(1, int(len(testbed_records) / peak * (width - 40)))
        builds = sorted({r.environment.build for r in testbed_records})
        lines.append(
            f"  {testbed:<14} {len(testbed_records):>3} {bar}  builds: {', '.join(builds[:4])}"
            + (" …" if len(builds) > 4 else "")
        )
    unacknowledged = len(store.fetch(unacknowledged_only=True))
    lines.append("")
    lines.append(f"{unacknowledged} alarm(s) awaiting engineer triage.")
    return "\n".join(lines)


#: Example self-metrics queries shown in the observability summary — one
#: rate() and one histogram_quantile(), both answered by the in-repo
#: PromQL engine over the campaign's own scrape TSDB.
_EXAMPLE_QUERIES = (
    "rate(repro_campaign_executions_total[2d])",
    "histogram_quantile(0.9, repro_nn_predict_batch_seconds_bucket)",
)


def observability_summary(campaign: "TestingCampaign") -> str:
    """The campaign's self-metrics, dogfooded through the PromQL engine.

    Reports how many ``repro_*`` series the daily scrapes produced, answers
    the example queries in :data:`_EXAMPLE_QUERIES` against the campaign's
    observability TSDB, and renders the most recent root span tree.
    """
    tsdb = campaign.observability_tsdb
    now = campaign.observability_now
    names = tsdb.metrics()
    lines = [
        "SELF-METRICS — scraped once per simulated day into "
        f"'{tsdb.name}' ({len(names)} metrics, {tsdb.n_samples()} samples)",
        "",
    ]
    for expr in _EXAMPLE_QUERIES:
        try:
            samples = promql_query(tsdb, expr, at=now)
        except PromQLError as error:
            lines.append(f"  {expr}\n    error: {error}")
            continue
        lines.append(f"  {expr}")
        if not samples:
            lines.append("    (no data)")
        for sample in samples[:3]:
            lines.append(f"    = {sample.value:.6g}")
    spans = get_observability().recent_spans
    if spans:
        lines.append("")
        lines.append("most recent span tree (wall-clock ms):")
        for line in spans[-1].render(unit="ms").splitlines():
            lines.append("  " + line)
    return "\n".join(lines)
