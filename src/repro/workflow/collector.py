"""Testbed data collection (paper §3, workflow step 1).

The testing engineer schedules a test-case execution; the metric collector
monitors the workload metrics, VNF performance metrics, and resource
utilization, links them to the environment metadata, and pushes everything
into the TSDB. Here the "live testbed" is a
:class:`~repro.data.chains.TestExecution` replayed sample by sample.

The collector is the workflow's first line of graceful degradation. A live
scrape stream is lossy — samples arrive late, twice, or never, and the
TSDB itself can refuse a write — so collection runs a repair ladder rather
than assuming clean input:

1. **sanitize** the delivered stream: re-sort out-of-order samples, drop
   duplicate timestamps, and drop NaN-poisoned rows (each dropped row
   becomes a *gap*, never a crash);
2. **retry** TSDB writes under a :class:`~repro.resilience.Retry` policy
   (transient failures back off and re-attempt; exhaustion propagates
   :class:`~repro.resilience.RetryExhausted` for the caller to quarantine);
3. **impute** short gaps on read-back by linear interpolation over the
   expected sample grid, and **quarantine** the execution
   (:class:`~repro.resilience.ExecutionQuarantined`) when gaps are too
   long or too numerous to trust.

Attach a :class:`~repro.resilience.ChaosProfile` to simulate the lossy
testbed; without one the ladder is pass-through and collection behaves
exactly as the clean replay always did.
"""

from __future__ import annotations

import numpy as np

from ..data.chains import TestExecution
from ..obs import get_observability
from ..resilience import ChaosProfile, ExecutionQuarantined, Retry
from .discovery import EMRegistry, ServiceDiscovery
from .tsdb import TimeSeriesDB

__all__ = ["MetricCollector", "RU_METRIC", "SAMPLE_INTERVAL_SECONDS"]

#: §4.2.1 — the telecom corpus is "measured at 15 minute intervals".
SAMPLE_INTERVAL_SECONDS = 15 * 60

#: Metric name under which resource utilization (the target) is stored.
RU_METRIC = "cpu_usage"

_OBS = get_observability()
_M_SAMPLES = _OBS.counter(
    "repro_samples_ingested_total",
    "Samples written into the workload TSDB by the metric collector.",
)
_M_SERIES = _OBS.counter(
    "repro_series_ingested_total",
    "Series written per collected execution (features + RU).",
)
_M_EXECUTIONS = _OBS.counter(
    "repro_executions_collected_total",
    "Test executions replayed into the TSDB.",
)
_M_REPAIRS = _OBS.counter(
    "repro_resilience_scrape_repairs_total",
    "Scrape-stream repairs performed by the collector's sanitizer.",
    labels=("repair",),
)
_M_GAPS = _OBS.counter(
    "repro_resilience_gap_samples_total",
    "Expected scrape rows missing after sanitization (gap-marked).",
)
_M_IMPUTED = _OBS.counter(
    "repro_resilience_imputed_samples_total",
    "Gap samples filled by linear interpolation on read-back.",
)


def _longest_run(mask: np.ndarray) -> int:
    """Length of the longest run of True in a boolean vector."""
    longest = current = 0
    for hit in mask:
        current = current + 1 if hit else 0
        longest = max(longest, current)
    return longest


class MetricCollector:
    """Replays test executions into a TSDB with EM labels attached.

    ``max_gap`` bounds the longest consecutive gap (in samples) that
    read-back will impute; ``max_missing_fraction`` bounds the total
    fraction of missing samples. Past either bound the execution is
    quarantined rather than reconstructed from guesswork.
    """

    def __init__(
        self,
        tsdb: TimeSeriesDB,
        registry: EMRegistry,
        discovery: ServiceDiscovery | None = None,
        feature_names: list[str] | None = None,
        interval: float = SAMPLE_INTERVAL_SECONDS,
        chaos: ChaosProfile | None = None,
        retry: Retry | None = None,
        max_gap: int = 5,
        max_missing_fraction: float = 0.5,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_gap < 1:
            raise ValueError("max_gap must be >= 1")
        if not 0.0 < max_missing_fraction < 1.0:
            raise ValueError("max_missing_fraction must be in (0, 1)")
        self.chaos = chaos
        self.tsdb = chaos.flaky(tsdb) if chaos is not None else tsdb
        self.registry = registry
        self.discovery = discovery
        self.feature_names = feature_names
        self.interval = interval
        self.retry = retry if retry is not None else Retry(max_attempts=5, name="tsdb-write")
        self.max_gap = max_gap
        self.max_missing_fraction = max_missing_fraction
        self._next_port = 9100
        # Expected sample grid per collected execution:
        # (start_time, n, complete). ``complete`` records that sanitization
        # delivered all n rows, letting read-back skip grid alignment.
        self._expected: dict[str, tuple[float, int, bool]] = {}

    @staticmethod
    def _sanitize(
        timestamps: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Repair one delivered scrape stream: resort, dedupe, drop NaN rows."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.float64)
        if len(timestamps) > 1:
            deltas = np.diff(timestamps)
            inversions = int((deltas < 0).sum())
            if inversions:
                order = np.argsort(timestamps, kind="stable")
                timestamps, rows = timestamps[order], rows[order]
                _M_REPAIRS.labels(repair="resort").inc(inversions)
                deltas = np.diff(timestamps)
            # A strictly increasing stream has no duplicates; only pay for
            # the dedupe sort when equal adjacent timestamps prove it's
            # needed (the clean path must stay cheap).
            if (deltas == 0).any():
                unique, first = np.unique(timestamps, return_index=True)
                _M_REPAIRS.labels(repair="dedupe").inc(len(timestamps) - len(unique))
                timestamps, rows = unique, rows[first]
        poisoned = np.isnan(rows).any(axis=1)
        if poisoned.any():
            _M_REPAIRS.labels(repair="nan_drop").inc(int(poisoned.sum()))
            timestamps, rows = timestamps[~poisoned], rows[~poisoned]
        return timestamps, rows

    def collect(self, execution: TestExecution, start_time: float = 0.0) -> str:
        """Ingest a whole execution; returns its EM record id.

        Writes one series per contextual feature plus the RU series, all
        labelled with ``env=<EM record id>`` as in the paper's service
        discovery snippet, and registers a collector endpoint when a
        discovery config is attached. Under chaos the stream is corrupted,
        sanitized, and written with gaps where samples were lost; writes
        go through the retry policy either way.
        """
        with _OBS.span("collector.collect"):
            record_id = self.registry.register(execution.environment)
            if self.discovery is not None:
                endpoint = f"10.0.0.{self._next_port % 250 + 1}:{self._next_port}"
                self._next_port += 1
                self.discovery.add_target(endpoint, record_id)
            labels = {"env": record_id}
            n = execution.n_timesteps
            timestamps = start_time + self.interval * np.arange(n)
            names = self.feature_names or [
                f"feature_{i:02d}" for i in range(execution.features.shape[1])
            ]
            if len(names) != execution.features.shape[1]:
                raise ValueError(
                    f"{len(names)} feature names for {execution.features.shape[1]} feature columns"
                )
            rows = np.column_stack([execution.features, execution.cpu])
            if self.chaos is not None:
                # Only a chaotic stream can arrive out of order, duplicated,
                # or NaN-poisoned; the clean replay is grid-built right here,
                # so sanitization would be a no-op scan per execution.
                timestamps, rows = self.chaos.corrupt_scrape(record_id, timestamps, rows)
                timestamps, rows = self._sanitize(timestamps, rows)
            self._expected[record_id] = (float(start_time), n, len(timestamps) == n)
            if n > len(timestamps):
                _M_GAPS.inc(n - len(timestamps))
            for column, name in enumerate(names):
                self.retry.call(
                    self.tsdb.write_array, name, labels, timestamps, rows[:, column]
                )
            self.retry.call(self.tsdb.write_array, RU_METRIC, labels, timestamps, rows[:, -1])
            _M_EXECUTIONS.inc()
            _M_SERIES.inc(len(names) + 1)
            _M_SAMPLES.inc(len(timestamps) * (len(names) + 1))
        return record_id

    def read_back(self, record_id: str, source=None) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct (features, cpu) for an execution from the TSDB.

        This is what the prediction pipeline does in step 3: read the
        monitoring data of the running testbed back out of Prometheus.
        For executions this collector ingested, the stored samples are
        aligned against the expected grid; short gaps are imputed by
        linear interpolation, and executions whose gaps exceed ``max_gap``
        consecutive samples (or ``max_missing_fraction`` overall) raise
        :class:`~repro.resilience.ExecutionQuarantined`.

        ``source`` overrides where the series are read from: any object
        with ``query_one``/``metrics`` (e.g. a read-only
        :class:`~repro.parallel.TSDBSnapshot` shard, so parallel
        read-backs never touch the live store). Defaults to this
        collector's own TSDB.
        """
        tsdb = source if source is not None else self.tsdb
        labels = {"env": record_id}
        names = self.feature_names or sorted(
            metric for metric in tsdb.metrics() if metric != RU_METRIC
        )
        expected = self._expected.get(record_id)
        if expected is None:
            # Legacy exact path: series ingested by other means must align.
            _, cpu = tsdb.query_one(RU_METRIC, labels).as_arrays()
            columns = []
            for name in names:
                _, values = tsdb.query_one(name, labels).as_arrays()
                if len(values) != len(cpu):
                    raise ValueError(
                        f"metric {name} has {len(values)} samples but RU has {len(cpu)}"
                    )
                columns.append(values)
            return np.stack(columns, axis=1), cpu

        start, n, complete = expected
        if complete:
            # Sanitization delivered every expected row, so the stored
            # series *is* the grid — reconstruct exactly, no alignment.
            _, cpu = tsdb.query_one(RU_METRIC, labels).as_arrays()
            columns = [
                tsdb.query_one(name, labels).as_arrays()[1] for name in names
            ]
            return np.stack(columns, axis=1), cpu

        def aligned(metric: str) -> np.ndarray:
            stamps, values = tsdb.query_one(metric, labels).as_arrays()
            vector = np.full(n, np.nan)
            if len(stamps):
                idx = np.rint((stamps - start) / self.interval).astype(int)
                ok = (idx >= 0) & (idx < n)
                vector[idx[ok]] = values[ok]
            return vector

        cpu = aligned(RU_METRIC)
        columns = [aligned(name) for name in names]
        missing = np.isnan(cpu)
        for column in columns:
            missing |= np.isnan(column)
        n_missing = int(missing.sum())
        if n_missing:
            if n_missing == n:
                raise ExecutionQuarantined(
                    "all_samples_missing", f"{record_id}: no usable samples stored"
                )
            longest = _longest_run(missing)
            if longest > self.max_gap:
                raise ExecutionQuarantined(
                    "gap_too_long",
                    f"{record_id}: longest gap is {longest} samples (max_gap={self.max_gap})",
                )
            if n_missing / n > self.max_missing_fraction:
                raise ExecutionQuarantined(
                    "too_many_gaps",
                    f"{record_id}: {n_missing}/{n} samples missing "
                    f"(max_missing_fraction={self.max_missing_fraction})",
                )
            grid = np.arange(n, dtype=np.float64)
            present = ~missing
            cpu[missing] = np.interp(grid[missing], grid[present], cpu[present])
            for column in columns:
                column[missing] = np.interp(grid[missing], grid[present], column[present])
            _M_IMPUTED.inc(n_missing * (len(names) + 1))
        return np.stack(columns, axis=1), cpu
