"""Testbed data collection (paper §3, workflow step 1).

The testing engineer schedules a test-case execution; the metric collector
monitors the workload metrics, VNF performance metrics, and resource
utilization, links them to the environment metadata, and pushes everything
into the TSDB. Here the "live testbed" is a
:class:`~repro.data.chains.TestExecution` replayed sample by sample.
"""

from __future__ import annotations

import numpy as np

from ..data.chains import TestExecution
from ..obs import get_observability
from .discovery import EMRegistry, ServiceDiscovery
from .tsdb import TimeSeriesDB

__all__ = ["MetricCollector", "RU_METRIC", "SAMPLE_INTERVAL_SECONDS"]

#: §4.2.1 — the telecom corpus is "measured at 15 minute intervals".
SAMPLE_INTERVAL_SECONDS = 15 * 60

#: Metric name under which resource utilization (the target) is stored.
RU_METRIC = "cpu_usage"

_OBS = get_observability()
_M_SAMPLES = _OBS.counter(
    "repro_samples_ingested_total",
    "Samples written into the workload TSDB by the metric collector.",
)
_M_SERIES = _OBS.counter(
    "repro_series_ingested_total",
    "Series written per collected execution (features + RU).",
)
_M_EXECUTIONS = _OBS.counter(
    "repro_executions_collected_total",
    "Test executions replayed into the TSDB.",
)


class MetricCollector:
    """Replays test executions into a TSDB with EM labels attached."""

    def __init__(
        self,
        tsdb: TimeSeriesDB,
        registry: EMRegistry,
        discovery: ServiceDiscovery | None = None,
        feature_names: list[str] | None = None,
        interval: float = SAMPLE_INTERVAL_SECONDS,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.tsdb = tsdb
        self.registry = registry
        self.discovery = discovery
        self.feature_names = feature_names
        self.interval = interval
        self._next_port = 9100

    def collect(self, execution: TestExecution, start_time: float = 0.0) -> str:
        """Ingest a whole execution; returns its EM record id.

        Writes one series per contextual feature plus the RU series, all
        labelled with ``env=<EM record id>`` as in the paper's service
        discovery snippet, and registers a collector endpoint when a
        discovery config is attached.
        """
        with _OBS.span("collector.collect"):
            record_id = self.registry.register(execution.environment)
            if self.discovery is not None:
                endpoint = f"10.0.0.{self._next_port % 250 + 1}:{self._next_port}"
                self._next_port += 1
                self.discovery.add_target(endpoint, record_id)
            labels = {"env": record_id}
            n = execution.n_timesteps
            timestamps = start_time + self.interval * np.arange(n)
            names = self.feature_names or [
                f"feature_{i:02d}" for i in range(execution.features.shape[1])
            ]
            if len(names) != execution.features.shape[1]:
                raise ValueError(
                    f"{len(names)} feature names for {execution.features.shape[1]} feature columns"
                )
            for column, name in enumerate(names):
                self.tsdb.write_array(name, labels, timestamps, execution.features[:, column])
            self.tsdb.write_array(RU_METRIC, labels, timestamps, execution.cpu)
            _M_EXECUTIONS.inc()
            _M_SERIES.inc(len(names) + 1)
            _M_SAMPLES.inc(n * (len(names) + 1))
        return record_id

    def read_back(self, record_id: str) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct (features, cpu) for an execution from the TSDB.

        This is what the prediction pipeline does in step 3: read the
        monitoring data of the running testbed back out of Prometheus.
        """
        labels = {"env": record_id}
        ru_series = self.tsdb.query_one(RU_METRIC, labels)
        _, cpu = ru_series.as_arrays()
        names = self.feature_names or sorted(
            metric for metric in self.tsdb.metrics() if metric != RU_METRIC
        )
        columns = []
        for name in names:
            _, values = self.tsdb.query_one(name, labels).as_arrays()
            if len(values) != len(cpu):
                raise ValueError(f"metric {name} has {len(values)} samples but RU has {len(cpu)}")
            columns.append(values)
        return np.stack(columns, axis=1), cpu
