"""Model training pipeline (paper §3, workflow step 2).

"The model is updated daily using all the new data generated where no
performance problem was flagged. Executions with true positive alarms are
masked out from the training data, along with any false negative problems
discovered independently by the testing engineers. ... After training
completion, the model is available via HTTP."

:class:`TrainingPipeline` gathers historical executions, masks flagged
environments, windows the series, trains a single
:class:`~repro.core.model.Env2VecRegressor`, and publishes the serialized
artifact to a :class:`~repro.workflow.model_store.ModelStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import Env2VecRegressor
from ..data.environment import Environment
from ..data.windows import build_windows_multi
from ..nn.training import TrainingDiverged
from ..obs import get_observability
from .model_store import ModelStore, ModelVersion

__all__ = ["TrainingPipeline", "TrainingResult"]

_OBS = get_observability()
_H_RUN = _OBS.histogram(
    "repro_training_run_seconds",
    "Wall-clock latency of one daily training run (window build, fit, publish).",
    buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0),
)
_M_RUNS = _OBS.counter("repro_training_runs_total", "Training-pipeline runs executed.")
_M_EPOCHS = _OBS.counter(
    "repro_training_epochs_total", "Training epochs run across all training runs."
)
_M_WINDOWS = _OBS.counter(
    "repro_training_windows_total", "History windows built for training (pre-split)."
)
_G_MASKED = _OBS.gauge(
    "repro_training_masked_executions",
    "Executions masked out of the most recent training pool.",
)
_M_DIVERGED = _OBS.counter(
    "repro_resilience_training_diverged_total",
    "Training runs aborted on a non-finite loss (no model published).",
)

TrainingRecord = tuple[Environment, np.ndarray, np.ndarray]


@dataclass
class TrainingResult:
    """Outcome of one (daily) training run."""

    model: Env2VecRegressor
    version: ModelVersion
    n_examples: int
    n_masked_executions: int
    epochs_run: int
    final_train_loss: float


class TrainingPipeline:
    def __init__(
        self,
        store: ModelStore,
        n_lags: int = 3,
        val_fraction: float = 0.1,
        model_params: dict | None = None,
        seed: int = 0,
    ):
        if not 0.0 <= val_fraction < 1.0:
            raise ValueError("val_fraction must be in [0, 1)")
        self.store = store
        self.n_lags = n_lags
        self.val_fraction = val_fraction
        self.model_params = dict(model_params or {})
        self.seed = seed

    def train(
        self,
        records: list[TrainingRecord],
        masked_environments: set[Environment] | None = None,
    ) -> TrainingResult:
        """Train on all non-masked executions and publish the model.

        ``masked_environments`` are the executions with true-positive
        alarms (and engineer-reported problems) excluded per step 2.
        """
        with _H_RUN.time():
            masked = masked_environments or set()
            usable = [record for record in records if record[0] not in masked]
            if not usable:
                raise ValueError("no training data left after masking")
            n_masked = len(records) - len(usable)

            with _OBS.span("train.build_windows"):
                series = [(features, cpu) for _, features, cpu in usable]
                X, history, y, series_ids = build_windows_multi(series, self.n_lags)
                environments = [usable[i][0] for i in series_ids]
            n_windows = len(y)

            model = Env2VecRegressor(n_lags=self.n_lags, seed=self.seed, **self.model_params)
            val = None
            if self.val_fraction > 0 and len(y) >= 20:
                rng = np.random.default_rng(self.seed)
                order = rng.permutation(len(y))
                n_val = max(1, int(len(y) * self.val_fraction))
                val_idx, train_idx = order[:n_val], order[n_val:]
                val = (
                    [environments[i] for i in val_idx],
                    X[val_idx],
                    history[val_idx],
                    y[val_idx],
                )
                environments = [environments[i] for i in train_idx]
                X, history, y = X[train_idx], history[train_idx], y[train_idx]

            with _OBS.span("train.fit"):
                try:
                    model.fit(environments, X, history, y, val=val)
                except TrainingDiverged:
                    # The aborted model is never published; the store keeps
                    # serving the previous version. Count it and let the
                    # orchestrator decide how the day degrades.
                    _M_DIVERGED.inc()
                    raise
            with _OBS.span("train.publish"):
                blob = model.to_bytes()
                version = self.store.publish(
                    blob,
                    metadata={
                        "n_examples": int(len(y)),
                        "n_lags": self.n_lags,
                        "masked_executions": n_masked,
                    },
                )
            _M_RUNS.inc()
            _M_EPOCHS.inc(model.history_.epochs_run)
            _M_WINDOWS.inc(n_windows)
            _G_MASKED.set(n_masked)
        return TrainingResult(
            model=model,
            version=version,
            n_examples=int(len(y)),
            n_masked_executions=n_masked,
            epochs_run=model.history_.epochs_run,
            final_train_loss=model.history_.train_loss[-1],
        )
