"""Multi-day testing-campaign orchestration.

Ties the whole Figure 2 loop together over simulated days:

- each day, every active build chain executes its next build;
- the prediction pipeline monitors each execution with the latest
  published model (step 5 → 3), calibrating the error model on the chain's
  previously ingested builds, and pushes alarms (step 4);
- executions whose alarms were confirmed true positives are **masked out**
  of the training pool, exactly as step 2 prescribes ("Executions with
  true positive alarms are masked out from the training data");
- the model is retrained daily on the accumulated non-flagged pool and
  republished.

This is the integration surface a team adopting Env2Vec would run; the
example scripts and integration tests drive it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.anomaly import ContextualAnomalyDetector, GaussianErrorModel
from ..core.model import Env2VecRegressor
from ..data.chains import TestExecution
from ..data.environment import Environment
from ..data.telecom import TelecomDataset
from ..data.windows import build_windows
from ..obs import TSDBExporter, get_observability
from .alarms import AlarmStore
from .drift import DriftMonitor
from .model_store import ModelStore
from .training_pipeline import TrainingPipeline
from .tsdb import TimeSeriesDB

__all__ = ["DayReport", "TestingCampaign"]

#: Simulated seconds per campaign day — the observability scrape cadence.
DAY_SECONDS = 86400.0

_OBS = get_observability()
_M_DAYS = _OBS.counter("repro_campaign_days_total", "Campaign days orchestrated.")
_M_EXECUTIONS = _OBS.counter(
    "repro_campaign_executions_total", "Test executions monitored by campaigns."
)
_M_ALARMS = _OBS.counter(
    "repro_campaign_alarms_total", "Alarms raised during campaign monitoring."
)
_M_CONFIRMED = _OBS.counter(
    "repro_campaign_alarms_confirmed_total",
    "Alarmed executions confirmed as true positives (and masked).",
)
_M_DRIFT = _OBS.counter(
    "repro_campaign_drift_days_total", "Campaign days on which drift was detected."
)
_G_MASKED = _OBS.gauge(
    "repro_campaign_masked_executions", "Executions currently masked out of training."
)


@dataclass
class DayReport:
    """What happened on one campaign day."""

    day: int
    executions_run: int
    alarms_raised: int
    flagged_environments: list[Environment]
    masked_environments: list[Environment]
    model_version: int
    drift_detected: bool = False

    @property
    def any_flagged(self) -> bool:
        return bool(self.flagged_environments)


@dataclass
class TestingCampaign:
    """Runs a testing corpus day by day through the full workflow."""

    __test__ = False  # keep pytest from collecting this as a test class

    model_store: ModelStore = field(default_factory=ModelStore)
    alarm_store: AlarmStore = field(default_factory=AlarmStore)
    gamma: float = 2.5
    abs_threshold: float = 5.0
    n_lags: int = 3
    model_params: dict = field(default_factory=lambda: {"max_epochs": 20, "batch_size": 256})
    seed: int = 0
    # Tracks the serving model's error level on clean executions; a
    # Page-Hinkley alarm marks a day where retraining was *needed*, not
    # merely scheduled.
    drift_monitor: DriftMonitor = field(default_factory=DriftMonitor)
    # Dogfood loop: after each day, scrape the global metric registry into
    # a campaign-owned TSDB (one scrape per simulated day) so the
    # campaign's own health is queryable through repro.workflow.promql.
    self_monitor: bool = True

    def __post_init__(self) -> None:
        self._pool: list[tuple[Environment, np.ndarray, np.ndarray]] = []
        self._ingested: dict[tuple, list[TestExecution]] = {}
        self._masked: set[Environment] = set()
        self._exporter: TSDBExporter | None = None
        if self.self_monitor:
            self._exporter = TSDBExporter(
                _OBS.registry,
                tsdb=TimeSeriesDB(name="campaign-observability"),
                interval=DAY_SECONDS,
            )
        self._pipeline = TrainingPipeline(
            self.model_store,
            n_lags=self.n_lags,
            model_params=dict(self.model_params),
            seed=self.seed,
        )
        self._detector = ContextualAnomalyDetector(
            gamma=self.gamma, abs_threshold=self.abs_threshold
        )
        self._model: Env2VecRegressor | None = None

    # -- internals --------------------------------------------------------
    def _predict(self, execution: TestExecution) -> tuple[np.ndarray, np.ndarray]:
        X, history, y = build_windows(execution.features, execution.cpu, self.n_lags)
        predictions = self._model.predict([execution.environment] * len(y), X, history)
        return predictions, y

    def _error_model(self, chain_key: tuple) -> GaussianErrorModel | None:
        previous = [
            execution
            for execution in self._ingested.get(chain_key, [])
            if execution.environment not in self._masked
        ]
        if not previous:
            return None
        errors = []
        for execution in previous:
            if execution.n_timesteps <= self.n_lags + 1:
                continue
            predictions, observed = self._predict(execution)
            errors.append(predictions - observed)
        if not errors:
            return None
        return GaussianErrorModel.fit(np.concatenate(errors))

    def _monitor(self, execution: TestExecution) -> int:
        """Detect anomalies for one execution; returns alarms raised."""
        if execution.n_timesteps <= self.n_lags + 1:
            return 0
        predictions, observed = self._predict(execution)
        error_model = self._error_model(execution.environment.chain_key)
        if error_model is None:
            report = self._detector.detect_self_calibrated(predictions, observed)
        else:
            report = self._detector.detect(predictions, observed, error_model)
        for alarm in report.alarms:
            self.alarm_store.push(
                environment=execution.environment,
                start_step=alarm.start + self.n_lags,
                end_step=alarm.end + self.n_lags,
                peak_deviation=alarm.peak_deviation,
                gamma=self.gamma,
            )
        return report.n_alarms

    # -- campaign API ---------------------------------------------------
    def run_day(self, day: int, executions: list[TestExecution]) -> DayReport:
        """Monitor the day's executions, update masks, retrain, publish."""
        if not executions:
            raise ValueError("a campaign day needs at least one execution")
        flagged: list[Environment] = []
        total_alarms = 0
        drift_detected = False
        with _OBS.span("campaign.day"):
            if self._model is not None:
                for execution in executions:
                    with _OBS.span("campaign.monitor"):
                        n_alarms = self._monitor(execution)
                    total_alarms += n_alarms
                    if not execution.has_performance_problem and execution.n_timesteps > self.n_lags + 1:
                        predictions, observed = self._predict(execution)
                        decision = self.drift_monitor.observe(
                            float(np.abs(predictions - observed).mean())
                        )
                        drift_detected = drift_detected or decision.drifted
                    if n_alarms and execution.has_performance_problem:
                        # Engineers confirm the alarms: a true positive — the
                        # execution is masked out of future training (step 2).
                        self._masked.add(execution.environment)
                        flagged.append(execution.environment)
                        _M_CONFIRMED.inc()
                    elif execution.has_performance_problem:
                        # A missed problem discovered independently (the paper's
                        # "false negative problems discovered independently by
                        # the testing engineers") is masked as well.
                        self._masked.add(execution.environment)

            for execution in executions:
                self._ingested.setdefault(execution.environment.chain_key, []).append(execution)
                self._pool.append((execution.environment, execution.features, execution.cpu))

            with _OBS.span("campaign.retrain"):
                result = self._pipeline.train(self._pool, masked_environments=self._masked)
                self._model = result.model
                # Compile once per retrain: tomorrow's monitoring (many predict
                # calls across chains) runs on the tape-free engine.
                self._model.compile()

        _M_DAYS.inc()
        _M_EXECUTIONS.inc(len(executions))
        _M_ALARMS.inc(total_alarms)
        if drift_detected:
            _M_DRIFT.inc()
        _G_MASKED.set(len(self._masked))
        if self._exporter is not None:
            # One scrape per simulated day: self-metrics become series the
            # PromQL engine can rate() and quantile over.
            self._exporter.tick()
        return DayReport(
            day=day,
            executions_run=len(executions),
            alarms_raised=total_alarms,
            flagged_environments=flagged,
            masked_environments=sorted(self._masked, key=lambda e: e.as_tuple()),
            model_version=result.version.version,
            drift_detected=drift_detected,
        )

    def run(self, dataset: TelecomDataset) -> list[DayReport]:
        """Replay a whole corpus: day d runs every chain's build #d."""
        max_builds = max(len(chain) for chain in dataset.chains)
        reports = []
        for day in range(max_builds):
            executions = [
                chain.executions[day] for chain in dataset.chains if day < len(chain)
            ]
            reports.append(self.run_day(day, executions))
        return reports

    @property
    def masked_environments(self) -> set[Environment]:
        return set(self._masked)

    @property
    def latest_model(self) -> Env2VecRegressor:
        if self._model is None:
            raise RuntimeError("no model trained yet; run at least one day")
        return self._model

    @property
    def observability_tsdb(self) -> TimeSeriesDB:
        """The campaign's self-metrics TSDB (one scrape per day).

        Query it with :mod:`repro.workflow.promql` at
        ``at=self.observability_now`` — e.g.
        ``rate(repro_campaign_alarms_total[2d])``.
        """
        if self._exporter is None:
            raise RuntimeError("self-monitoring is disabled (self_monitor=False)")
        return self._exporter.tsdb

    @property
    def observability_now(self) -> float:
        """The simulated timestamp of the most recent self-metrics scrape."""
        if self._exporter is None or self._exporter.last_scrape is None:
            raise RuntimeError("no self-metrics scraped yet; run at least one day")
        return self._exporter.last_scrape
