"""Multi-day testing-campaign orchestration.

Ties the whole Figure 2 loop together over simulated days:

- each day, every active build chain executes its next build;
- the prediction pipeline monitors each execution with the latest
  published model (step 5 → 3), calibrating the error model on the chain's
  previously ingested builds, and pushes alarms (step 4);
- executions whose alarms were confirmed true positives are **masked out**
  of the training pool, exactly as step 2 prescribes ("Executions with
  true positive alarms are masked out from the training data");
- the model is retrained daily on the accumulated non-flagged pool and
  republished.

This is the integration surface a team adopting Env2Vec would run; the
example scripts and integration tests drive it end to end.

The campaign degrades gracefully instead of assuming a clean replay:

- with ``use_collector=True`` (forced on by ``chaos``), executions are
  routed through the :class:`~repro.workflow.collector.MetricCollector`
  — scraped into a workload TSDB, sanitized, gap-imputed on read-back —
  so the campaign monitors and trains on what the telemetry path actually
  delivered, not on the pristine in-memory arrays;
- executions whose telemetry is beyond repair (collector outage, gaps too
  long, TSDB down past the retry budget) are quarantined to the
  :class:`~repro.resilience.DeadLetterStore` and excluded from monitoring
  *and* training — never crashing the day;
- a divergent training run (:class:`~repro.nn.TrainingDiverged`) aborts
  cleanly: the previous model keeps serving, the day is reported as
  ``training_diverged``;
- with ``checkpoint_dir`` set, the full mutable state is snapshotted
  after every day and :meth:`TestingCampaign.run` resumes idempotently
  from the latest snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.anomaly import ContextualAnomalyDetector, GaussianErrorModel
from ..core.model import Env2VecRegressor
from ..data.chains import TestExecution
from ..data.environment import Environment
from ..data.telecom import TelecomDataset
from ..data.windows import build_windows
from ..nn.training import TrainingDiverged
from ..obs import TSDBExporter, get_observability
from ..resilience import (
    ChaosProfile,
    DeadLetterRecord,
    DeadLetterStore,
    ExecutionQuarantined,
    RetryExhausted,
    TransientTSDBError,
)
from .alarms import AlarmStore
from .checkpoint import CampaignState, load_latest_checkpoint, save_checkpoint
from .collector import MetricCollector
from .discovery import EMRegistry
from .drift import DriftMonitor
from .model_store import ModelStore
from .training_pipeline import TrainingPipeline
from .tsdb import AmbiguousSeries, SeriesNotFound, TimeSeriesDB

__all__ = ["DayReport", "TestingCampaign"]

#: Simulated seconds per campaign day — the observability scrape cadence.
DAY_SECONDS = 86400.0

_OBS = get_observability()
_M_DAYS = _OBS.counter("repro_campaign_days_total", "Campaign days orchestrated.")
_M_EXECUTIONS = _OBS.counter(
    "repro_campaign_executions_total", "Test executions monitored by campaigns."
)
_M_ALARMS = _OBS.counter(
    "repro_campaign_alarms_total", "Alarms raised during campaign monitoring."
)
_M_CONFIRMED = _OBS.counter(
    "repro_campaign_alarms_confirmed_total",
    "Alarmed executions confirmed as true positives (and masked).",
)
_M_DRIFT = _OBS.counter(
    "repro_campaign_drift_days_total", "Campaign days on which drift was detected."
)
_G_MASKED = _OBS.gauge(
    "repro_campaign_masked_executions", "Executions currently masked out of training."
)
_M_QUARANTINED = _OBS.counter(
    "repro_resilience_quarantined_executions_total",
    "Executions dead-lettered by campaigns instead of processed.",
)
_M_RESUMES = _OBS.counter(
    "repro_resilience_campaign_resumes_total",
    "Campaign runs that restored state from a checkpoint.",
)


@dataclass
class DayReport:
    """What happened on one campaign day."""

    day: int
    executions_run: int
    alarms_raised: int
    flagged_environments: list[Environment]
    masked_environments: list[Environment]
    model_version: int
    drift_detected: bool = False
    training_diverged: bool = False
    quarantined_environments: list[Environment] = field(default_factory=list)

    @property
    def any_flagged(self) -> bool:
        return bool(self.flagged_environments)


def _report_to_dict(report: DayReport) -> dict:
    return {
        "day": report.day,
        "executions_run": report.executions_run,
        "alarms_raised": report.alarms_raised,
        "flagged_environments": [env.as_dict() for env in report.flagged_environments],
        "masked_environments": [env.as_dict() for env in report.masked_environments],
        "model_version": report.model_version,
        "drift_detected": report.drift_detected,
        "training_diverged": report.training_diverged,
        "quarantined_environments": [
            env.as_dict() for env in report.quarantined_environments
        ],
    }


def _report_from_dict(data: dict) -> DayReport:
    return DayReport(
        day=int(data["day"]),
        executions_run=int(data["executions_run"]),
        alarms_raised=int(data["alarms_raised"]),
        flagged_environments=[Environment(**env) for env in data["flagged_environments"]],
        masked_environments=[Environment(**env) for env in data["masked_environments"]],
        model_version=int(data["model_version"]),
        drift_detected=bool(data["drift_detected"]),
        training_diverged=bool(data["training_diverged"]),
        quarantined_environments=[
            Environment(**env) for env in data["quarantined_environments"]
        ],
    )


def _env_key(environment: Environment) -> str:
    return "/".join(environment.as_tuple())


@dataclass
class TestingCampaign:
    """Runs a testing corpus day by day through the full workflow."""

    __test__ = False  # keep pytest from collecting this as a test class

    model_store: ModelStore = field(default_factory=ModelStore)
    alarm_store: AlarmStore = field(default_factory=AlarmStore)
    gamma: float = 2.5
    abs_threshold: float = 5.0
    n_lags: int = 3
    model_params: dict = field(default_factory=lambda: {"max_epochs": 20, "batch_size": 256})
    seed: int = 0
    # Tracks the serving model's error level on clean executions; a
    # Page-Hinkley alarm marks a day where retraining was *needed*, not
    # merely scheduled.
    drift_monitor: DriftMonitor = field(default_factory=DriftMonitor)
    # Dogfood loop: after each day, scrape the global metric registry into
    # a campaign-owned TSDB (one scrape per simulated day) so the
    # campaign's own health is queryable through repro.workflow.promql.
    self_monitor: bool = True
    # Infrastructure-fault simulation; setting a profile forces executions
    # through the collector path so the faults have somewhere to land.
    chaos: ChaosProfile | None = None
    # Route executions through collector → TSDB → read-back even without
    # chaos (the production-shaped path; ~the policies-enabled clean path).
    use_collector: bool = False
    # Where un-processable executions are accounted for.
    dead_letters: DeadLetterStore = field(default_factory=DeadLetterStore)
    # Longest gap (in samples) the collector may impute before quarantine.
    max_gap: int = 5
    # When set, every completed day is snapshotted here and run() resumes
    # from the latest snapshot.
    checkpoint_dir: str | Path | None = None
    # Monitoring-phase parallelism: 1 keeps the legacy serial loop; >1
    # scores the day's executions through repro.parallel.CampaignScorer
    # (per-chain calibration computed once, coalesced predicts, sharded
    # TSDB read-backs) with results byte-identical to the serial run.
    # Not part of the checkpoint state: a campaign checkpointed serially
    # resumes correctly under any worker count and vice versa.
    n_workers: int = 1
    # "threads" (numpy releases the GIL on the inference path) or
    # "processes" (for pure-Python-bound jobs; requires picklable work).
    worker_kind: str = "threads"

    def __post_init__(self) -> None:
        self._pool: list[tuple[Environment, np.ndarray, np.ndarray]] = []
        self._ingested: dict[tuple, list[TestExecution]] = {}
        self._masked: set[Environment] = set()
        self._report_dicts: list[dict] = []
        self._exporter: TSDBExporter | None = None
        if self.self_monitor:
            self._exporter = TSDBExporter(
                _OBS.registry,
                tsdb=TimeSeriesDB(name="campaign-observability"),
                interval=DAY_SECONDS,
            )
        if self.chaos is not None:
            self.use_collector = True
        self._collector: MetricCollector | None = None
        if self.use_collector:
            self._collector = MetricCollector(
                TimeSeriesDB(name="campaign-workload"),
                EMRegistry(),
                chaos=self.chaos,
                max_gap=self.max_gap,
            )
        self._pipeline = TrainingPipeline(
            self.model_store,
            n_lags=self.n_lags,
            model_params=dict(self.model_params),
            seed=self.seed,
        )
        self._detector = ContextualAnomalyDetector(
            gamma=self.gamma, abs_threshold=self.abs_threshold
        )
        self._model: Env2VecRegressor | None = None
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        # Imported lazily: repro.parallel.sharding imports this package's
        # tsdb module, so a module-level import here would cycle.
        self._scorer = None
        if self.n_workers > 1:
            from ..parallel import CampaignScorer, WindowCache, WorkerPool

            self._scorer = CampaignScorer(
                self._detector,
                self.n_lags,
                pool=WorkerPool(self.n_workers, kind=self.worker_kind),
                window_cache=WindowCache(self.n_lags),
            )

    def service(self, **kwargs):
        """Campaign-as-a-service: an always-on front end over this campaign.

        Builds a :class:`repro.serve.Env2VecService` wired to the
        campaign's own model store, alarm store, collector, and detector
        thresholds, so live traffic is monitored by exactly the model the
        day loop would use and alarms land in the same store the day loop
        reads. Keyword arguments (``config=ServeConfig(...)``,
        ``breaker_clock=...``, ...) pass through to the service.
        """
        # Imported lazily: repro.serve imports this package's pipelines,
        # so a module-level import here would cycle.
        from ..serve import Env2VecService

        kwargs.setdefault("gamma", self.gamma)
        kwargs.setdefault("abs_threshold", self.abs_threshold)
        return Env2VecService(
            self.model_store,
            self.alarm_store,
            self._collector,
            **kwargs,
        )

    # -- internals --------------------------------------------------------
    def _predict(self, execution: TestExecution) -> tuple[np.ndarray, np.ndarray]:
        X, history, y = build_windows(execution.features, execution.cpu, self.n_lags)
        predictions = self._model.predict([execution.environment] * len(y), X, history)
        return predictions, y

    def _error_model(self, chain_key: tuple) -> GaussianErrorModel | None:
        previous = [
            execution
            for execution in self._ingested.get(chain_key, [])
            if execution.environment not in self._masked
        ]
        if not previous:
            return None
        errors = []
        for execution in previous:
            if execution.n_timesteps <= self.n_lags + 1:
                continue
            predictions, observed = self._predict(execution)
            errors.append(predictions - observed)
        if not errors:
            return None
        return GaussianErrorModel.fit(np.concatenate(errors))

    def _monitor(self, execution: TestExecution) -> int:
        """Detect anomalies for one execution; returns alarms raised."""
        if execution.n_timesteps <= self.n_lags + 1:
            return 0
        predictions, observed = self._predict(execution)
        error_model = self._error_model(execution.environment.chain_key)
        if error_model is None:
            report = self._detector.detect_self_calibrated(predictions, observed)
        else:
            report = self._detector.detect(predictions, observed, error_model)
        for alarm in report.alarms:
            self.alarm_store.push(
                environment=execution.environment,
                start_step=alarm.start + self.n_lags,
                end_step=alarm.end + self.n_lags,
                peak_deviation=alarm.peak_deviation,
                gamma=self.gamma,
            )
        return report.n_alarms

    def _collect_day(
        self, day: int, executions: list[TestExecution]
    ) -> tuple[list[TestExecution], list[Environment]]:
        """Route the day's executions through the lossy telemetry path.

        Each execution is scraped into the workload TSDB (under chaos
        corruption, behind the retry policy) and read back gap-imputed.
        Executions the path cannot deliver are dead-lettered; the day
        continues with whatever survived.
        """
        delivered: list[TestExecution] = []
        quarantined: list[Environment] = []

        def quarantine(execution: TestExecution, reason: str, detail: str) -> None:
            self.dead_letters.add(
                _env_key(execution.environment), reason, detail=detail, day=day
            )
            quarantined.append(execution.environment)
            _M_QUARANTINED.inc()

        for execution in executions:
            key = _env_key(execution.environment)
            if self.chaos is not None and self.chaos.outage(key):
                quarantine(execution, "collector_outage", "scrape window lost")
                continue
            try:
                record_id = self._collector.collect(execution)
                features, cpu = self._collector.read_back(record_id)
            except (RetryExhausted, TransientTSDBError) as exc:
                quarantine(execution, "tsdb_unavailable", str(exc))
                continue
            except ExecutionQuarantined as exc:
                quarantine(execution, exc.reason, exc.detail)
                continue
            except (SeriesNotFound, AmbiguousSeries) as exc:
                quarantine(execution, "series_missing", str(exc))
                continue
            # The campaign works with what the telemetry path delivered;
            # ground-truth fault labels ride along for mask decisions.
            delivered.append(
                TestExecution(
                    environment=execution.environment,
                    features=features,
                    cpu=cpu,
                    faults=list(execution.faults),
                )
            )
        return delivered, quarantined

    def _collect_day_parallel(
        self, day: int, executions: list[TestExecution]
    ) -> tuple[list[TestExecution], list[Environment]]:
        """Collector path with sharded, contention-free parallel read-backs.

        Writes stay serial (the live TSDB is not a concurrent structure);
        the read-back — the query-heavy half — runs against read-only
        snapshot shards, one shard per execution's label set, so worker
        reads never touch the live store or each other's series. Only
        taken without chaos: fault injection hooks the live read path,
        and bypassing it through a snapshot would change which faults
        land (the chaos campaign stays on the serial collector).
        """
        records: list[tuple[TestExecution, str]] = []
        quarantined: list[Environment] = []
        for execution in executions:
            try:
                record_id = self._collector.collect(execution)
            except (RetryExhausted, TransientTSDBError) as exc:
                self.dead_letters.add(
                    _env_key(execution.environment),
                    "tsdb_unavailable",
                    detail=str(exc),
                    day=day,
                )
                quarantined.append(execution.environment)
                _M_QUARANTINED.inc()
                continue
            records.append((execution, record_id))

        from ..parallel import snapshot_shards

        shards = snapshot_shards(self.workload_tsdb, self._scorer.pool.n_workers)

        def read_one(item: tuple[TestExecution, str]):
            execution, record_id = item
            shard = shards.shard_for({"env": record_id})
            try:
                features, cpu = self._collector.read_back(record_id, source=shard)
            except ExecutionQuarantined as exc:
                return ("quarantine", exc.reason, exc.detail)
            except (SeriesNotFound, AmbiguousSeries) as exc:
                return ("quarantine", "series_missing", str(exc))
            return ("ok", features, cpu)

        delivered: list[TestExecution] = []
        # Fan-in in input order: quarantine records and the delivered list
        # come out exactly as the serial collector would produce them.
        for (execution, record_id), result in zip(
            records, self._scorer.pool.map(read_one, records)
        ):
            if result[0] == "quarantine":
                _, reason, detail = result
                self.dead_letters.add(
                    _env_key(execution.environment), reason, detail=detail, day=day
                )
                quarantined.append(execution.environment)
                _M_QUARANTINED.inc()
                continue
            _, features, cpu = result
            delivered.append(
                TestExecution(
                    environment=execution.environment,
                    features=features,
                    cpu=cpu,
                    faults=list(execution.faults),
                )
            )
        return delivered, quarantined

    def _retrain(self, day: int) -> tuple[int, bool]:
        """Daily retrain; returns (serving model version, diverged?)."""
        records = self._pool
        if self.chaos is not None and records and self.chaos.training_diverges(day):
            # Poison one execution's targets: the divergence guard must
            # abort the fit and the previous model must keep serving. The
            # victim must survive masking or the poison never reaches fit.
            victim = next(
                (
                    i
                    for i in range(len(records) - 1, -1, -1)
                    if records[i][0] not in self._masked
                ),
                None,
            )
            if victim is not None:
                poisoned = list(records)
                environment, features, cpu = poisoned[victim]
                poisoned[victim] = (environment, features, np.full_like(cpu, np.nan))
                records = poisoned
        try:
            result = self._pipeline.train(records, masked_environments=self._masked)
        except TrainingDiverged:
            return self.model_store.latest_version, True
        self._model = result.model
        # Compile once per retrain: tomorrow's monitoring (many predict
        # calls across chains) runs on the tape-free engine.
        self._model.compile()
        return result.version.version, False

    # -- campaign API ---------------------------------------------------
    def run_day(self, day: int, executions: list[TestExecution]) -> DayReport:
        """Monitor the day's executions, update masks, retrain, publish."""
        if not executions:
            raise ValueError("a campaign day needs at least one execution")
        flagged: list[Environment] = []
        quarantined: list[Environment] = []
        total_alarms = 0
        drift_detected = False
        training_diverged = False
        with _OBS.span("campaign.day"):
            if self._collector is not None:
                with _OBS.span("campaign.collect"):
                    if self._scorer is not None and self.chaos is None:
                        executions, quarantined = self._collect_day_parallel(day, executions)
                    else:
                        executions, quarantined = self._collect_day(day, executions)
            if self._model is not None:
                if self._scorer is not None:
                    # Fan-out: workers compute pure scores (per-chain error
                    # model calibrated once, predicts coalesced). Fan-in:
                    # every side effect — alarm pushes, drift observations,
                    # masking — applies serially in input order, so the
                    # day's outcome is byte-identical to the serial loop.
                    with _OBS.span("campaign.monitor"):
                        scores = self._scorer.score(
                            self._model, executions, self._ingested, self._masked
                        )
                else:
                    scores = None
                for position, execution in enumerate(executions):
                    if scores is not None:
                        score = scores[position]
                        n_alarms = score.n_alarms
                        if score.report is not None:
                            for alarm in score.report.alarms:
                                self.alarm_store.push(
                                    environment=execution.environment,
                                    start_step=alarm.start + self.n_lags,
                                    end_step=alarm.end + self.n_lags,
                                    peak_deviation=alarm.peak_deviation,
                                    gamma=self.gamma,
                                )
                    else:
                        with _OBS.span("campaign.monitor"):
                            n_alarms = self._monitor(execution)
                    total_alarms += n_alarms
                    if not execution.has_performance_problem and execution.n_timesteps > self.n_lags + 1:
                        if scores is not None:
                            # The monitoring predictions are bitwise the
                            # serial ones; reuse their MAE instead of
                            # re-predicting the execution.
                            mae = scores[position].mae
                        else:
                            predictions, observed = self._predict(execution)
                            mae = float(np.abs(predictions - observed).mean())
                        decision = self.drift_monitor.observe(mae)
                        drift_detected = drift_detected or decision.drifted
                    if n_alarms and execution.has_performance_problem:
                        # Engineers confirm the alarms: a true positive — the
                        # execution is masked out of future training (step 2).
                        self._masked.add(execution.environment)
                        flagged.append(execution.environment)
                        _M_CONFIRMED.inc()
                    elif execution.has_performance_problem:
                        # A missed problem discovered independently (the paper's
                        # "false negative problems discovered independently by
                        # the testing engineers") is masked as well.
                        self._masked.add(execution.environment)

            for execution in executions:
                self._ingested.setdefault(execution.environment.chain_key, []).append(execution)
                self._pool.append((execution.environment, execution.features, execution.cpu))

            if self._pool:
                with _OBS.span("campaign.retrain"):
                    model_version, training_diverged = self._retrain(day)
            else:
                # Every execution so far was quarantined; nothing to train
                # on yet. The campaign stays up and tries again tomorrow.
                model_version = self.model_store.latest_version

        _M_DAYS.inc()
        _M_EXECUTIONS.inc(len(executions))
        _M_ALARMS.inc(total_alarms)
        if drift_detected:
            _M_DRIFT.inc()
        _G_MASKED.set(len(self._masked))
        if self._exporter is not None:
            # One scrape per simulated day: self-metrics become series the
            # PromQL engine can rate() and quantile over.
            self._exporter.tick()
        report = DayReport(
            day=day,
            executions_run=len(executions),
            alarms_raised=total_alarms,
            flagged_environments=flagged,
            masked_environments=sorted(self._masked, key=lambda e: e.as_tuple()),
            model_version=model_version,
            drift_detected=drift_detected,
            training_diverged=training_diverged,
            quarantined_environments=quarantined,
        )
        self._report_dicts.append(_report_to_dict(report))
        if self.checkpoint_dir is not None:
            self._save_checkpoint(day)
        return report

    def run(self, dataset: TelecomDataset) -> list[DayReport]:
        """Replay a whole corpus: day d runs every chain's build #d.

        With ``checkpoint_dir`` set, a previous run's snapshots are
        restored first and only the remaining days execute — re-running a
        killed campaign is idempotent and converges on the same reports
        and final model as an uninterrupted run.
        """
        reports: list[DayReport] = []
        start_day = 0
        if self.checkpoint_dir is not None:
            state = load_latest_checkpoint(self.checkpoint_dir)
            if state is not None:
                reports = self._restore(state)
                start_day = state.day + 1
        max_builds = max(len(chain) for chain in dataset.chains)
        for day in range(start_day, max_builds):
            executions = [
                chain.executions[day] for chain in dataset.chains if day < len(chain)
            ]
            reports.append(self.run_day(day, executions))
        return reports

    # -- checkpointing -----------------------------------------------------
    def _save_checkpoint(self, day: int) -> Path:
        state = CampaignState(
            day=day,
            pool=self._pool,
            masked=sorted(self._masked, key=lambda e: e.as_tuple()),
            model_blob=self._model.to_bytes() if self._model is not None else None,
            drift_state=self.drift_monitor.state_dict(),
            exporter_now=self._exporter.last_scrape if self._exporter is not None else None,
            reports=list(self._report_dicts),
            dead_letters=[
                {"key": r.key, "reason": r.reason, "detail": r.detail, "day": r.day}
                for r in self.dead_letters.records()
            ],
        )
        return save_checkpoint(self.checkpoint_dir, state)

    def _restore(self, state: CampaignState) -> list[DayReport]:
        """Load a snapshot into this campaign; returns the restored reports."""
        self._pool = list(state.pool)
        self._masked = set(state.masked)
        self._ingested = {}
        for environment, features, cpu in self._pool:
            # Fault labels are not checkpointed; restored executions only
            # feed error-model calibration, which never reads them.
            self._ingested.setdefault(environment.chain_key, []).append(
                TestExecution(environment=environment, features=features, cpu=cpu)
            )
        if state.model_blob is not None:
            self._model = Env2VecRegressor.from_bytes(state.model_blob)
            self._model.compile()
        self.drift_monitor.load_state(state.drift_state)
        if self._exporter is not None and state.exporter_now is not None:
            # Continue the simulated scrape clock; the restored exporter
            # writes into a fresh TSDB, so monotonicity is preserved.
            self._exporter._now = state.exporter_now
            self._exporter.last_scrape = state.exporter_now
        self.dead_letters.restore(
            [
                DeadLetterRecord(
                    key=r["key"], reason=r["reason"], detail=r["detail"], day=r["day"]
                )
                for r in state.dead_letters
            ]
        )
        self._report_dicts = list(state.reports)
        _M_RESUMES.inc()
        return [_report_from_dict(data) for data in state.reports]

    @property
    def masked_environments(self) -> set[Environment]:
        return set(self._masked)

    @property
    def latest_model(self) -> Env2VecRegressor:
        if self._model is None:
            raise RuntimeError("no model trained yet; run at least one day")
        return self._model

    @property
    def workload_tsdb(self) -> TimeSeriesDB:
        """The collector-path TSDB (only with ``use_collector``/chaos)."""
        if self._collector is None:
            raise RuntimeError("collector path is disabled (use_collector=False)")
        tsdb = self._collector.tsdb
        # Unwrap the chaos proxy so callers query the real store.
        return getattr(tsdb, "_tsdb", tsdb)

    @property
    def observability_tsdb(self) -> TimeSeriesDB:
        """The campaign's self-metrics TSDB (one scrape per day).

        Query it with :mod:`repro.workflow.promql` at
        ``at=self.observability_now`` — e.g.
        ``rate(repro_campaign_alarms_total[2d])``.
        """
        if self._exporter is None:
            raise RuntimeError("self-monitoring is disabled (self_monitor=False)")
        return self._exporter.tsdb

    @property
    def observability_now(self) -> float:
        """The simulated timestamp of the most recent self-metrics scrape."""
        if self._exporter is None or self._exporter.last_scrape is None:
            raise RuntimeError("no self-metrics scraped yet; run at least one day")
        return self._exporter.last_scrape
