"""An in-memory, label-indexed time-series database (Prometheus substitute).

Workflow step 1 (paper §3): workload metrics (WMs), VNF performance
metrics (PMs) and resource-utilization (RU) metrics "are linked to EM and
pulled into a real-time time-series database (TSDB), in our case,
Prometheus". This module provides the slice of Prometheus the Env2Vec
pipelines rely on: append-only series keyed by (metric name, label set),
exact-match label selectors, and range queries.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Sample", "Series", "TimeSeriesDB"]


@dataclass(frozen=True)
class Sample:
    timestamp: float
    value: float


@dataclass
class Series:
    """One time series: a metric name, a label set, and ordered samples."""

    metric: str
    labels: dict[str, str]
    timestamps: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, timestamp: float, value: float) -> None:
        if self.timestamps and timestamp <= self.timestamps[-1]:
            raise ValueError(
                f"timestamps must be strictly increasing; got {timestamp} after {self.timestamps[-1]}"
            )
        self.timestamps.append(float(timestamp))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.timestamps)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.timestamps), np.asarray(self.values)

    def range(self, start: float, end: float) -> "Series":
        """Samples with start <= timestamp < end (exact half-open interval)."""
        lo = bisect_left(self.timestamps, start)
        hi = bisect_left(self.timestamps, end)
        return Series(
            metric=self.metric,
            labels=dict(self.labels),
            timestamps=self.timestamps[lo:hi],
            values=self.values[lo:hi],
        )


def _series_key(metric: str, labels: dict[str, str]) -> tuple:
    return (metric, tuple(sorted(labels.items())))


class TimeSeriesDB:
    """Append-only store with Prometheus-style label matching."""

    def __init__(self) -> None:
        self._series: dict[tuple, Series] = {}

    # -- ingestion ---------------------------------------------------------
    def write(self, metric: str, labels: dict[str, str], timestamp: float, value: float) -> None:
        """Append one sample to the series identified by (metric, labels)."""
        if not metric:
            raise ValueError("metric name must be non-empty")
        labels = {str(k): str(v) for k, v in labels.items()}
        key = _series_key(metric, labels)
        series = self._series.get(key)
        if series is None:
            series = Series(metric=metric, labels=labels)
            self._series[key] = series
        series.append(timestamp, value)

    def write_array(
        self,
        metric: str,
        labels: dict[str, str],
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk-append aligned timestamp/value arrays."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if timestamps.shape != values.shape or timestamps.ndim != 1:
            raise ValueError("timestamps and values must be aligned 1-d arrays")
        for timestamp, value in zip(timestamps, values):
            self.write(metric, labels, timestamp, value)

    # -- queries -------------------------------------------------------------
    def query(self, metric: str, matchers: dict[str, str] | None = None) -> list[Series]:
        """Series of ``metric`` whose labels include all ``matchers``."""
        matchers = {str(k): str(v) for k, v in (matchers or {}).items()}
        out = []
        for series in self._series.values():
            if series.metric != metric:
                continue
            if all(series.labels.get(k) == v for k, v in matchers.items()):
                out.append(series)
        return out

    def query_one(self, metric: str, matchers: dict[str, str] | None = None) -> Series:
        """Like :meth:`query` but requires exactly one matching series."""
        matches = self.query(metric, matchers)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one series for {metric} {matchers}; found {len(matches)}"
            )
        return matches[0]

    def query_range(
        self,
        metric: str,
        matchers: dict[str, str] | None,
        start: float,
        end: float,
    ) -> list[Series]:
        """Matching series restricted to [start, end)."""
        if end <= start:
            raise ValueError("need start < end")
        return [series.range(start, end) for series in self.query(metric, matchers)]

    # -- introspection ----------------------------------------------------------
    def metrics(self) -> list[str]:
        return sorted({series.metric for series in self._series.values()})

    def label_values(self, label: str) -> list[str]:
        values = {
            series.labels[label] for series in self._series.values() if label in series.labels
        }
        return sorted(values)

    def n_series(self) -> int:
        return len(self._series)

    def n_samples(self) -> int:
        return sum(len(series) for series in self._series.values())
