"""An in-memory, label-indexed time-series database (Prometheus substitute).

Workflow step 1 (paper §3): workload metrics (WMs), VNF performance
metrics (PMs) and resource-utilization (RU) metrics "are linked to EM and
pulled into a real-time time-series database (TSDB), in our case,
Prometheus". This module provides the slice of Prometheus the Env2Vec
pipelines rely on: append-only series keyed by (metric name, label set),
exact-match label selectors, and range queries.

Lookup failures carry dedicated types — :class:`SeriesNotFound` and
:class:`AmbiguousSeries` (both ``LookupError`` subclasses) — so pipelines
can distinguish "nothing matched" from "the selector is underspecified".

Every instance reports its own traffic to :mod:`repro.obs` under a ``db``
label (``repro_tsdb_samples_written_total{db="default"}``, query counters,
series/sample gauges), which is how the observability exporter's dogfood
TSDB and the workload TSDB stay distinguishable in one registry.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from ..obs import get_observability

__all__ = [
    "Sample",
    "Series",
    "SeriesNotFound",
    "AmbiguousSeries",
    "TimeSeriesDB",
]


class SeriesNotFound(LookupError):
    """A selector matched no series."""


class AmbiguousSeries(LookupError):
    """A selector expected to identify one series matched several."""


@dataclass(frozen=True)
class Sample:
    timestamp: float
    value: float


@dataclass
class Series:
    """One time series: a metric name, a label set, and ordered samples."""

    metric: str
    labels: dict[str, str]
    timestamps: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, timestamp: float, value: float) -> None:
        if self.timestamps and timestamp <= self.timestamps[-1]:
            raise ValueError(
                f"timestamps must be strictly increasing; got {timestamp} after {self.timestamps[-1]}"
            )
        self.timestamps.append(float(timestamp))
        self.values.append(float(value))

    def extend(self, timestamps: np.ndarray, values: np.ndarray) -> None:
        """Bulk-append pre-validated (strictly increasing) aligned arrays."""
        if len(timestamps) == 0:
            return
        if self.timestamps and timestamps[0] <= self.timestamps[-1]:
            raise ValueError(
                f"timestamps must be strictly increasing; series {self.metric}{self.labels} "
                f"already ends at {self.timestamps[-1]}, new batch starts at {timestamps[0]}"
            )
        self.timestamps.extend(float(t) for t in timestamps)
        self.values.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self.timestamps)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.timestamps), np.asarray(self.values)

    def range(self, start: float, end: float) -> "Series":
        """Samples with start <= timestamp < end (exact half-open interval)."""
        lo = bisect_left(self.timestamps, start)
        hi = bisect_left(self.timestamps, end)
        return Series(
            metric=self.metric,
            labels=dict(self.labels),
            timestamps=self.timestamps[lo:hi],
            values=self.values[lo:hi],
        )


def _series_key(metric: str, labels: dict[str, str]) -> tuple:
    return (metric, tuple(sorted(labels.items())))


_OBS = get_observability()
_M_WRITES = _OBS.counter(
    "repro_tsdb_samples_written_total", "Samples appended to a TSDB.", labels=("db",)
)
_M_QUERIES = _OBS.counter(
    "repro_tsdb_queries_total", "Label-matching queries served by a TSDB.", labels=("db",)
)
_G_SERIES = _OBS.gauge("repro_tsdb_series", "Live series per TSDB.", labels=("db",))
_G_SAMPLES = _OBS.gauge("repro_tsdb_samples", "Stored samples per TSDB.", labels=("db",))


class TimeSeriesDB:
    """Append-only store with Prometheus-style label matching."""

    def __init__(self, name: str = "default") -> None:
        self._series: dict[tuple, Series] = {}
        self.name = name
        self._n_samples = 0
        # Handles resolved once per instance; per-write cost is one method
        # call plus the registry's enabled check.
        self._m_writes = _M_WRITES.labels(db=name)
        self._m_queries = _M_QUERIES.labels(db=name)
        self._g_series = _G_SERIES.labels(db=name)
        self._g_samples = _G_SAMPLES.labels(db=name)

    # -- ingestion ---------------------------------------------------------
    def _series_for(self, metric: str, labels: dict[str, str]) -> Series:
        if not metric:
            raise ValueError("metric name must be non-empty")
        labels = {str(k): str(v) for k, v in labels.items()}
        key = _series_key(metric, labels)
        series = self._series.get(key)
        if series is None:
            series = Series(metric=metric, labels=labels)
            self._series[key] = series
            self._g_series.set(len(self._series))
        return series

    def write(self, metric: str, labels: dict[str, str], timestamp: float, value: float) -> None:
        """Append one sample to the series identified by (metric, labels)."""
        self._series_for(metric, labels).append(timestamp, value)
        self._n_samples += 1
        self._m_writes.inc()
        self._g_samples.set(self._n_samples)

    def write_array(
        self,
        metric: str,
        labels: dict[str, str],
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk-append aligned timestamp/value arrays.

        Timestamps must be strictly increasing; the first offending index
        is named so a misordered replay fails with actionable context.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if timestamps.shape != values.shape or timestamps.ndim != 1:
            raise ValueError("timestamps and values must be aligned 1-d arrays")
        if timestamps.size > 1:
            gaps = np.diff(timestamps)
            if (gaps <= 0).any():
                bad = int(np.flatnonzero(gaps <= 0)[0]) + 1
                raise ValueError(
                    f"timestamps must be strictly increasing; "
                    f"timestamps[{bad}] = {timestamps[bad]} does not advance past "
                    f"timestamps[{bad - 1}] = {timestamps[bad - 1]}"
                )
        self._series_for(metric, labels).extend(timestamps, values)
        self._n_samples += timestamps.size
        self._m_writes.inc(timestamps.size)
        self._g_samples.set(self._n_samples)

    # -- queries -------------------------------------------------------------
    def query(self, metric: str, matchers: dict[str, str] | None = None) -> list[Series]:
        """Series of ``metric`` whose labels include all ``matchers``."""
        self._m_queries.inc()
        matchers = {str(k): str(v) for k, v in (matchers or {}).items()}
        out = []
        for series in self._series.values():
            if series.metric != metric:
                continue
            if all(series.labels.get(k) == v for k, v in matchers.items()):
                out.append(series)
        return out

    def query_one(self, metric: str, matchers: dict[str, str] | None = None) -> Series:
        """Like :meth:`query` but requires exactly one matching series.

        Raises :class:`SeriesNotFound` when nothing matches and
        :class:`AmbiguousSeries` when the selector is underspecified.
        """
        matches = self.query(metric, matchers)
        if not matches:
            raise SeriesNotFound(f"no series matches {metric} {matchers or {}}")
        if len(matches) > 1:
            raise AmbiguousSeries(
                f"selector {metric} {matchers or {}} matches {len(matches)} series; "
                f"add labels to disambiguate"
            )
        return matches[0]

    def query_range(
        self,
        metric: str,
        matchers: dict[str, str] | None,
        start: float,
        end: float,
    ) -> list[Series]:
        """Matching series restricted to [start, end)."""
        if end <= start:
            raise ValueError("need start < end")
        return [series.range(start, end) for series in self.query(metric, matchers)]

    # -- introspection ----------------------------------------------------------
    def series_items(self) -> list[tuple[tuple, Series]]:
        """Every stored series with its canonical key, in insertion order.

        The key is ``(metric, tuple(sorted(labels.items())))`` — the same
        identity used internally for writes. This is the hook
        :mod:`repro.parallel.sharding` uses to build read-only snapshot
        shards without reaching into private state; the returned list is a
        copy, but the :class:`Series` objects are live (snapshot builders
        must copy the sample arrays themselves).
        """
        return list(self._series.items())

    def metrics(self) -> list[str]:
        return sorted({series.metric for series in self._series.values()})

    def label_values(self, label: str) -> list[str]:
        values = {
            series.labels[label] for series in self._series.values() if label in series.labels
        }
        return sorted(values)

    def n_series(self) -> int:
        return len(self._series)

    def n_samples(self) -> int:
        return self._n_samples
