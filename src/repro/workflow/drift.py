"""Model-drift detection: know when the daily retrain is *needed*.

The paper retrains Env2Vec on a fixed daily schedule (§3 step 2). In a
production deployment the complementary question is whether the serving
model has *drifted* — new builds, config pushes, or infrastructure changes
can shift the error distribution between retrains, inflating false alarms.

:class:`PageHinkley` implements the Page-Hinkley sequential change
detector over the stream of absolute prediction errors on *clean*
executions: it accumulates the deviation of each observation from the
running mean (minus a tolerance ``delta``) and signals when the
accumulated drift exceeds ``threshold``. :class:`DriftMonitor` wraps it
per-deployment and recommends a retrain when drift fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PageHinkley", "DriftMonitor", "DriftDecision"]


class PageHinkley:
    """Page-Hinkley test for upward mean shifts in a value stream."""

    def __init__(self, delta: float = 0.05, threshold: float = 5.0, warmup: int = 30):
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.warmup = warmup
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    @property
    def statistic(self) -> float:
        """Current drift statistic (0 when no upward shift accumulated)."""
        return self._cumulative - self._minimum

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when drift is detected."""
        if not np.isfinite(value):
            raise ValueError("observations must be finite")
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count <= self.warmup:
            return False
        return self.statistic > self.threshold

    def state_dict(self) -> dict:
        """The detector's mutable state, for campaign checkpoints."""
        return {
            "count": self._count,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def load_state(self, state: dict) -> None:
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])


@dataclass
class DriftDecision:
    """Outcome of feeding one clean execution's errors to the monitor."""

    drifted: bool
    statistic: float
    observations: int


@dataclass
class DriftMonitor:
    """Tracks serving-model error drift and recommends retraining.

    Feed it the mean absolute error of each *clean* (non-flagged) monitored
    execution in arrival order. When Page-Hinkley fires, the monitor
    recommends a retrain and resets so the next model generation starts
    from a clean slate.
    """

    delta: float = 0.05
    threshold: float = 5.0
    warmup: int = 10
    detector: PageHinkley = field(init=False)
    retrain_recommendations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.detector = PageHinkley(
            delta=self.delta, threshold=self.threshold, warmup=self.warmup
        )
        self._observations = 0

    def observe(self, clean_execution_mae: float) -> DriftDecision:
        """Record one execution's characterization error."""
        if clean_execution_mae < 0:
            raise ValueError("MAE must be non-negative")
        self._observations += 1
        drifted = self.detector.update(clean_execution_mae)
        statistic = self.detector.statistic
        if drifted:
            self.retrain_recommendations += 1
            self.detector.reset()
            self._observations = 0
        return DriftDecision(
            drifted=drifted, statistic=statistic, observations=self._observations
        )

    def state_dict(self) -> dict:
        """Everything needed to resume drift tracking after a restart."""
        return {
            "detector": self.detector.state_dict(),
            "retrain_recommendations": self.retrain_recommendations,
            "observations": self._observations,
        }

    def load_state(self, state: dict) -> None:
        self.detector.load_state(state["detector"])
        self.retrain_recommendations = int(state["retrain_recommendations"])
        self._observations = int(state["observations"])
