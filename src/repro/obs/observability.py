"""The process-global :class:`Observability` object.

Every instrumented module resolves its metric handles from one shared
instance (:func:`get_observability`, or the :data:`OBS` alias) so that a
single scrape sees the whole system: collector ingestion, TSDB traffic,
pipeline latencies, campaign alarms, inference-engine cache behaviour.

Switching instrumentation off (:meth:`Observability.disable`, or
``Observability(enabled=False)``) turns every ``inc``/``set``/``observe``
into a flag check and every ``span(...)`` into a shared no-op context
manager — the hot paths stay within noise of uninstrumented code
(``benchmarks/bench_observability.py`` holds this to <2%).

The global instance is a singleton by design: handles cached at import
time in instrumented modules must stay valid for the life of the process.
Tests therefore isolate themselves with :meth:`Observability.reset` (zero
all values, drop recorded spans) rather than by swapping the object.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_BUCKETS
from .spans import Span, SpanTracker

__all__ = ["Observability", "get_observability", "OBS"]


class Observability:
    """Registry + span tracker behind one enable/disable switch."""

    def __init__(self, enabled: bool = True, max_roots: int = 256):
        self.registry = MetricsRegistry(enabled=enabled)
        self.spans = SpanTracker(self.registry, max_roots=max_roots)

    # -- switch ------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def enable(self) -> None:
        self.registry.enabled = True

    def disable(self) -> None:
        self.registry.enabled = False

    @contextmanager
    def disabled(self):
        """Temporarily switch instrumentation off (benchmark baselines)."""
        previous = self.registry.enabled
        self.registry.enabled = False
        try:
            yield
        finally:
            self.registry.enabled = previous

    # -- registration (delegates) -----------------------------------------
    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self.registry.counter(name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self.registry.gauge(name, help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self.registry.histogram(name, help, labels, buckets)

    # -- spans -------------------------------------------------------------
    def span(self, name: str):
        """``with obs.span("predict.forward"): ...`` — see :mod:`.spans`."""
        return self.spans.span(name)

    @property
    def recent_spans(self) -> list[Span]:
        """Most recent completed root spans, oldest first."""
        return list(self.spans.roots)

    # -- exposition --------------------------------------------------------
    def expose(self) -> str:
        """Prometheus text exposition of the whole registry."""
        from .export import render_prometheus

        return render_prometheus(self.registry)

    def reset(self) -> None:
        """Zero all metric values and drop recorded spans.

        Registrations (and cached handles in instrumented modules) stay
        valid — this is the between-tests / between-benchmarks isolation
        primitive.
        """
        self.registry.reset()
        self.spans.clear()


#: The process-global instance every instrumented module shares.
_GLOBAL = Observability()

OBS = _GLOBAL


def get_observability() -> Observability:
    """The process-global :class:`Observability` singleton."""
    return _GLOBAL
