"""Lightweight spans: nested wall-clock timers over a contextvar.

``with spans.span("predict.forward"): ...`` times a block, records the
duration into the shared ``repro_span_duration_seconds`` histogram
(labelled by span name), and — because the active span lives in a
:mod:`contextvars` variable — automatically nests: a span opened while
another is active becomes its child, producing a per-run tree
(``campaign.day`` → ``campaign.monitor`` → ``predict.run`` → ...).

Completed *root* spans are kept in a bounded ring so reports can render
the most recent trees; children are owned by their parents. When the
owning registry is disabled, :meth:`SpanTracker.span` returns a shared
no-op context manager — no Span object, no contextvar write, no clock
read.

Worker threads get *per-worker span roots* for free: a fresh thread sees
the contextvar's ``None`` default, so the first span a
:class:`~repro.parallel.WorkerPool` task opens has no parent and lands in
``roots`` as its own tree (it does not nest under the spawning thread's
open ``campaign.day`` span). The ``roots`` ring is a ``deque`` whose
appends are atomic under CPython, so concurrent workers never corrupt it.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from .metrics import MetricsRegistry

__all__ = ["Span", "SpanTracker"]

#: Bounds tuned for span-sized work: 0.1 ms .. 30 s.
SPAN_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Span:
    """One timed block: a name, a duration, and child spans."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str):
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        return max(self.end - self.start, 0.0) if self.end else 0.0

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (depth, span) pairs, self first."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def render(self, unit: str = "ms") -> str:
        """An indented tree with per-span durations, for reports."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        lines = [
            f"{'  ' * depth}{node.name:<{max(1, 40 - 2 * depth)}} "
            f"{node.duration * scale:>10.3f} {unit}"
            for depth, node in self.walk()
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _NullSpan:
    """Reusable do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanTracker:
    """Owns the active-span contextvar and the recent-roots ring."""

    def __init__(self, registry: MetricsRegistry, max_roots: int = 256):
        self._registry = registry
        self._histogram = registry.histogram(
            "repro_span_duration_seconds",
            "Wall-clock duration of instrumented spans.",
            labels=("span",),
            buckets=SPAN_BUCKETS,
        )
        self._current: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)
        self.roots: deque[Span] = deque(maxlen=max_roots)

    @property
    def current(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def span(self, name: str):
        """Context manager timing a block as a child of the active span."""
        if not self._registry.enabled:
            return _NULL_SPAN
        return self._record(name)

    @contextmanager
    def _record(self, name: str):
        node = Span(name)
        parent = self._current.get()
        token = self._current.set(node)
        node.start = time.perf_counter()
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            self._current.reset(token)
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
            self._histogram.labels(span=name).observe(node.duration)

    def clear(self) -> None:
        self.roots.clear()
