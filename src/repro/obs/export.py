"""Exporters: Prometheus text exposition and the TSDB dogfood scrape.

Two ways out of a :class:`~repro.obs.metrics.MetricsRegistry`:

- :func:`render_prometheus` produces the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers plus one line per sample) — what a real
  ``/metrics`` endpoint would serve;
- :class:`TSDBExporter` *scrapes* the registry into the repo's own
  :class:`~repro.workflow.tsdb.TimeSeriesDB` on a simulated-clock cadence,
  so the system's self-metrics become ordinary series that the in-repo
  PromQL engine can query (``rate(repro_samples_ingested_total[15m])``,
  ``histogram_quantile(0.9, repro_prediction_run_seconds_bucket)``) —
  the same dogfood loop a production VNF monitor runs on itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tsdb imports obs)
    from ..workflow.tsdb import TimeSeriesDB

__all__ = ["render_prometheus", "TSDBExporter"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(str(value))}"'
                    for key, value in sample.labels.items()
                )
                lines.append(f"{sample.name}{{{rendered}}} {_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


class TSDBExporter:
    """Scrape a registry into a :class:`TimeSeriesDB` at simulated times.

    Each scrape writes every sample (including histogram ``_bucket`` /
    ``_sum`` / ``_count`` series) at the given timestamp. The TSDB
    enforces strictly increasing timestamps per series, so scrapes must
    advance the clock; :meth:`tick` does that automatically on a fixed
    ``interval``. Pass ``prefix`` to restrict the scrape to the repo's
    self-metric namespace (the default keeps everything ``repro_*``).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tsdb: "TimeSeriesDB | None" = None,
        interval: float = 15.0,
        prefix: str = "repro_",
        extra_labels: dict[str, str] | None = None,
    ):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        if tsdb is None:
            from ..workflow.tsdb import TimeSeriesDB  # deferred: tsdb imports repro.obs

            tsdb = TimeSeriesDB(name="observability")
        self.registry = registry
        self.tsdb = tsdb
        self.interval = float(interval)
        self.prefix = prefix
        self.extra_labels = dict(extra_labels or {})
        self.last_scrape: float | None = None
        self._now = 0.0

    def scrape(self, at: float) -> int:
        """Write one snapshot of the registry at time ``at``.

        Returns the number of samples written. Scrapes must move forward
        in time; a repeated or earlier timestamp raises, because silently
        dropping a scrape would bias every rate() computed downstream.
        """
        at = float(at)
        if self.last_scrape is not None and at <= self.last_scrape:
            raise ValueError(
                f"scrape time must advance (last scrape at {self.last_scrape}, got {at})"
            )
        written = 0
        for metric in self.registry.collect():
            if not metric.name.startswith(self.prefix):
                continue
            for sample in metric.samples():
                self.tsdb.write(
                    sample.name, {**sample.labels, **self.extra_labels}, at, sample.value
                )
                written += 1
        self.last_scrape = at
        self._now = max(self._now, at)
        return written

    def tick(self) -> float:
        """Advance the simulated clock by ``interval`` and scrape.

        Returns the timestamp that was scraped.
        """
        self._now += self.interval
        self.scrape(self._now)
        return self._now
