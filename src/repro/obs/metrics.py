"""Metric primitives: Counter, Gauge, Histogram, and their registry.

The system is Prometheus-shaped end to end (the workflow's TSDB and PromQL
engine substitute for a real Prometheus), so its *self*-instrumentation
speaks the same dialect: metric families carry a name, help text, and a
fixed tuple of label names; label *values* select a child time series;
histograms expose cumulative ``_bucket``/``_sum``/``_count`` samples. The
naming convention for everything this repo records about itself is a
``repro_`` prefix (``repro_samples_ingested_total``,
``repro_prediction_run_seconds_bucket``, ...).

Hot-path cost model: every mutator (``inc``/``set``/``observe``) first
checks the owning registry's ``enabled`` flag and returns immediately when
instrumentation is off — one attribute load and one branch, no allocation.
Metric handles are meant to be resolved once (module/instance scope) and
reused, not looked up per call.

Every hot-path mutation is atomic: each leaf (a label-less family, or one
child of a labelled family) owns a lock taken around its value update, so
concurrent ``inc``/``set``/``observe`` from the parallel campaign
executor's worker threads never lose increments. The disabled path stays
lock-free (the enabled check returns before the lock), and the registry
lock still only guards family/child registration.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramTimer",
    "MetricSample",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
]

#: Prometheus client defaults — general-purpose positive observations.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Finer low end for the microsecond-scale latencies of the compiled
#: inference engine (a batch-1 forward is tens of microseconds).
LATENCY_BUCKETS = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


class MetricSample:
    """One exposition-ready sample of a metric family."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSample({self.name!r}, {self.labels!r}, {self.value!r})"


class _Enabled:
    """Shared mutable on/off cell — one branch per hot-path mutation."""

    __slots__ = ("on",)

    def __init__(self, on: bool = True):
        self.on = on


class _Metric:
    """Common family machinery: label children, registration metadata."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = (),
                 enabled: _Enabled | None = None):
        if not _NAME_RE.fullmatch(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.fullmatch(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._enabled = enabled if enabled is not None else _Enabled()
        self._children: dict[tuple[str, ...], "_Metric"] = {}
        self._lock = threading.Lock()
        # Per-leaf lock guarding value updates; children get their own in
        # _make_child so siblings never contend with each other.
        self._value_lock = threading.Lock()
        if not self.label_names:
            # A label-less family is its own single child: inc()/set()/
            # observe() work directly on it.
            self._children[()] = self

    def labels(self, **labels: str):
        """The child selected by one value per declared label name."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}; got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        # Double-checked locking: the bare read is the fast path; a miss
        # re-checks under the lock before inserting, and dict reads of a
        # fully-constructed child are safe under CPython's atomic getitem.
        child = self._children.get(key)  # repro: noqa[REP013]
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self):
        child = object.__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.label_names = ()
        child._enabled = self._enabled
        child._children = {(): child}
        child._lock = self._lock
        child._value_lock = threading.Lock()
        child._init_value()
        return child

    def _init_value(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _require_leaf(self) -> None:
        if self.label_names:
            raise ValueError(
                f"{self.name} is a labelled family; select a child via .labels(...)"
            )

    def _iter_children(self) -> Iterator[tuple[dict[str, str], "_Metric"]]:
        if not self.label_names:
            yield {}, self
            return
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            yield dict(zip(self.label_names, key)), child

    def samples(self) -> Iterator[MetricSample]:
        """Exposition samples over every child, in label-sorted order."""
        for labels, child in self._iter_children():
            yield from child._value_samples(labels)

    def _value_samples(self, labels: dict[str, str]) -> Iterator[MetricSample]:
        raise NotImplementedError  # pragma: no cover - overridden

    def reset(self) -> None:
        """Zero every child's value (registrations and children survive)."""
        for _, child in self._iter_children():
            with child._value_lock:
                child._init_value()


class Counter(_Metric):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = (),
                 enabled: _Enabled | None = None):
        super().__init__(name, help, label_names, enabled)
        if not self.label_names:
            self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled.on:
            return
        if self.label_names:  # inline leaf check: no call on the hot path
            self._require_leaf()
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._value_lock:
            self._value += amount

    @property
    def value(self) -> float:
        self._require_leaf()
        with self._value_lock:
            return self._value

    def _value_samples(self, labels: dict[str, str]) -> Iterator[MetricSample]:
        with self._value_lock:
            value = self._value
        yield MetricSample(self.name, labels, value)


class Gauge(_Metric):
    """A value that can go up and down (sizes, cache fill, masks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = (),
                 enabled: _Enabled | None = None):
        super().__init__(name, help, label_names, enabled)
        if not self.label_names:
            self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._enabled.on:
            return
        if self.label_names:
            self._require_leaf()
        with self._value_lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled.on:
            return
        if self.label_names:
            self._require_leaf()
        with self._value_lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        self._require_leaf()
        with self._value_lock:
            return self._value

    def _value_samples(self, labels: dict[str, str]) -> Iterator[MetricSample]:
        with self._value_lock:
            value = self._value
        yield MetricSample(self.name, labels, value)


def format_le(bound: float) -> str:
    """Prometheus bucket-bound rendering: ``0.005``, ``1``, ``+Inf``."""
    if bound == float("inf"):
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class HistogramTimer:
    """``with histogram.time() as t: ...`` — observe the block's duration.

    This is the sanctioned way for sim-clock code (``core``, ``workflow``,
    ``parallel``, ``resilience``) to measure real elapsed time: the
    monotonic-clock read lives here in :mod:`repro.obs`, the one package
    the REP002 wall-clock rule exempts, instead of being scattered
    through pipeline bodies as ``time.perf_counter()`` pairs. The timer
    always measures (one perf_counter read per enter/exit — nowhere near
    a hot path); only the ``observe`` respects the registry switch.
    ``t.elapsed`` holds the measured seconds after the block exits.
    """

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "HistogramTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = perf_counter() - self._start
        self._histogram.observe(self.elapsed)


class Histogram(_Metric):
    """Cumulative-bucket histogram of positive observations.

    Exposes ``<name>_bucket{le="..."}`` (cumulative counts including the
    ``+Inf`` bucket), ``<name>_sum`` and ``<name>_count`` — exactly the
    series shape ``histogram_quantile`` expects downstream.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 enabled: _Enabled | None = None):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing; got {bounds}")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        super().__init__(name, help, label_names, enabled)
        if not self.label_names:
            self._init_value()

    def _make_child(self):
        child = super()._make_child()
        child.bounds = self.bounds
        child._init_value()  # re-init now that bounds exist
        return child

    def _init_value(self) -> None:
        # _counts[i] is the number of observations landing in bucket i
        # (non-cumulative); the final slot is the overflow (+Inf) bucket.
        self._counts = [0] * (len(getattr(self, "bounds", ())) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._enabled.on:
            return
        if self.label_names:
            self._require_leaf()
        value = float(value)
        bucket = bisect_left(self.bounds, value)
        with self._value_lock:
            self._counts[bucket] += 1
            self._sum += value
            self._count += 1

    def time(self) -> HistogramTimer:
        """A context manager observing the wrapped block's wall duration."""
        self._require_leaf()
        return HistogramTimer(self)

    def _snapshot(self) -> tuple[list[int], float, int]:
        """One consistent (counts, sum, count) view under a single lock
        hold — read paths must never see a sum torn from its buckets,
        and must never nest two ``_value_lock`` acquisitions."""
        with self._value_lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        self._require_leaf()
        return self._snapshot()[2]

    @property
    def sum(self) -> float:
        self._require_leaf()
        return self._snapshot()[1]

    def cumulative_counts(self) -> list[int]:
        """Per-bound cumulative counts, ending with the +Inf total."""
        self._require_leaf()
        out, running = [], 0
        for count in self._snapshot()[0]:
            running += count
            out.append(running)
        return out

    def _value_samples(self, labels: dict[str, str]) -> Iterator[MetricSample]:
        counts, total_sum, total_count = self._snapshot()
        cumulative, running = [], 0
        for count in counts:
            running += count
            cumulative.append(running)
        for bound, count in zip(self.bounds + (float("inf"),), cumulative):
            yield MetricSample(
                f"{self.name}_bucket", {**labels, "le": format_le(bound)}, float(count)
            )
        yield MetricSample(f"{self.name}_sum", labels, total_sum)
        yield MetricSample(f"{self.name}_count", labels, float(total_count))


class MetricsRegistry:
    """Process-wide family index with idempotent registration.

    Registering the same name twice returns the existing family (so any
    module can declare the metrics it uses without coordination), but
    mismatched kind/labels/buckets raise — two call sites silently writing
    incompatible shapes to one name is a bug worth failing loudly on.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = _Enabled(enabled)
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- enable/disable ----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled.on

    @enabled.setter
    def enabled(self, on: bool) -> None:
        self._enabled.on = bool(on)

    @property
    def enabled_cell(self) -> _Enabled:
        """The shared on/off cell, for hot paths where even the ``enabled``
        property call per operation is measurable — read ``cell.on``."""
        return self._enabled

    # -- registration ------------------------------------------------------
    def _register(self, cls, name: str, help: str, label_names: tuple[str, ...], **kw):
        label_names = tuple(label_names)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}; cannot re-register as "
                        f"{cls.kind}{label_names}"
                    )
                if kw.get("buckets") is not None and existing.bounds != tuple(
                    float(b) for b in kw["buckets"] if b != float("inf")
                ):
                    raise ValueError(f"metric {name!r} already registered with different buckets")
                return existing
            metric = cls(name, help, label_names, enabled=self._enabled, **{
                k: v for k, v in kw.items() if v is not None
            })
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=tuple(buckets))

    # -- introspection -----------------------------------------------------
    def get(self, name: str) -> _Metric:
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise KeyError(f"no metric registered under {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> Iterator[_Metric]:
        """Families in registration order (stable exposition layout)."""
        with self._lock:
            families = list(self._metrics.values())
        yield from families

    def samples(self) -> Iterator[MetricSample]:
        for metric in self.collect():
            yield from metric.samples()

    def reset(self) -> None:
        """Zero every value while keeping registrations and children."""
        for metric in self.collect():
            metric.reset()
