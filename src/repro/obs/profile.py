"""Per-op wall-clock profiling for compiled inference engines.

The compiled :mod:`repro.nn.inference` path is a handful of fused numpy
kernels per forward; understanding where a batch actually spends its time
needs sub-microsecond attribution per *op*, which is far finer grained
than the span tracker's request-level trees. :class:`OpProfiler`
accumulates ``perf_counter`` deltas per named op across many forwards;
compiled plans check :func:`active_profiler` once per call and only pay
for timing when a profiler is installed, so the serving hot path stays
branch-cheap.

Usage::

    from repro.obs import profile_ops

    with profile_ops() as prof:
        for _ in range(100):
            engine(**batch)
    for name, seconds, calls in prof.table():
        print(f"{name:12s} {seconds * 1e6 / calls:8.1f} us/call")

The active profiler is process-global and not thread-aware: install it
only around single-threaded measurement loops (benchmarks, tests), never
in the serving workers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["OpProfiler", "active_profiler", "profile_ops"]


class OpProfiler:
    """Accumulates per-op wall-clock totals and call counts."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def op(self, name: str) -> Iterator[None]:
        """Time one op invocation under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def table(self) -> list[tuple[str, float, int]]:
        """``(name, total_seconds, calls)`` rows, slowest first."""
        return sorted(
            ((name, total, self.calls[name]) for name, total in self.totals.items()),
            key=lambda row: row[1],
            reverse=True,
        )

    def reset(self) -> None:
        self.totals.clear()
        self.calls.clear()


_ACTIVE: OpProfiler | None = None


def active_profiler() -> OpProfiler | None:
    """The currently installed profiler, or ``None`` (the common case)."""
    return _ACTIVE


@contextmanager
def profile_ops(profiler: OpProfiler | None = None) -> Iterator[OpProfiler]:
    """Install an :class:`OpProfiler` for the duration of the block."""
    global _ACTIVE
    prof = profiler if profiler is not None else OpProfiler()
    previous = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = previous
