"""Self-observability: metrics, spans, and exporters for the system itself.

The workflow monitors VNFs through a Prometheus-shaped stack; this package
applies the same discipline to the system's own behaviour. A process-global
:class:`Observability` object owns a metric registry (Counter / Gauge /
Histogram, all named ``repro_*``) and a nesting span timer; two exporters
take the data out — Prometheus text exposition, and a
:class:`TSDBExporter` that scrapes the registry into the in-repo
:class:`~repro.workflow.tsdb.TimeSeriesDB` so self-metrics are queryable
through :mod:`repro.workflow.promql`::

    from repro.obs import get_observability, span, TSDBExporter

    obs = get_observability()
    requests = obs.counter("repro_requests_total", "Requests served.")
    with span("serve.request"):
        requests.inc()

    exporter = TSDBExporter(obs.registry, interval=15.0)
    exporter.tick()                      # scrape at simulated t=15s
    print(obs.expose())                  # Prometheus text format

Everything is zero-cost when disabled (``obs.disable()``): mutators become
a flag check, spans become a shared no-op context manager.
"""

from .export import TSDBExporter, render_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramTimer,
    MetricSample,
    MetricsRegistry,
)
from .observability import OBS, Observability, get_observability
from .profile import OpProfiler, active_profiler, profile_ops
from .spans import Span, SpanTracker

__all__ = [
    "Observability",
    "get_observability",
    "OBS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramTimer",
    "MetricSample",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "Span",
    "SpanTracker",
    "span",
    "OpProfiler",
    "active_profiler",
    "profile_ops",
    "render_prometheus",
    "TSDBExporter",
]


def span(name: str):
    """Time a block against the process-global observability instance."""
    return get_observability().span(name)
