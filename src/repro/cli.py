"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro table4            # KDN method comparison (§4.1)
    python -m repro figure1           # per-chain linear models (motivation)
    python -m repro figure3           # Env2Vec vs Ridge_ts per chain
    python -m repro figure4           # MAE CDF over chains
    python -m repro table5            # anomaly detection, with-history
    python -m repro table6            # unseen environments (§4.3)
    python -m repro table7            # coverage analysis
    python -m repro figure6           # embedding-space PCA
    python -m repro holdout           # §6 hold-out contribution analysis
    python -m repro campaign          # multi-day workflow simulation
    python -m repro corpus            # EM coverage/balance statistics
    python -m repro calibration       # §3.2 Gaussian-error assumption check
    python -m repro all               # everything above, in order
    python -m repro analyze src       # repro.analysis lint engine (REP rules)
    python -m repro serve             # always-on serving demo (repro.serve)

Options: ``--full`` uses the paper-scale training protocol (slower);
``--seed N`` reseeds the synthetic corpora; ``--chains N`` resizes the
telecom corpus; ``--workers N`` scores campaign executions through the
parallel sharded executor (``repro.parallel``).
"""

from __future__ import annotations

import argparse
import sys
import time

from .data.kdn import load_all_kdn
from .data.telecom import TelecomConfig, generate_telecom

EXPERIMENTS = (
    "table4",
    "figure1",
    "figure3",
    "figure4",
    "table5",
    "table6",
    "table7",
    "figure6",
    "holdout",
    "campaign",
    "corpus",
    "calibration",
)

__all__ = ["main", "EXPERIMENTS", "clear_caches"]

# Explicit module-level caches, keyed by the corpus-defining CLI options.
# These used to be mutable default arguments (``def _f(args, cache={})``),
# which ruff B006 now forbids: a default-arg dict is invisible at the call
# site, survives for the life of the process, and cannot be cleared without
# reaching into ``__defaults__`` — stale entries leaked across programmatic
# ``main()`` invocations in one process. (``functools.lru_cache`` does not
# fit directly: an argparse ``Namespace`` is unhashable.)
_CONTEXT_CACHE: dict[tuple, tuple] = {}
_CHAIN_MAE_CACHE: dict[tuple, object] = {}


def _cache_key(args) -> tuple:
    return (args.seed, args.chains, args.full)


def clear_caches() -> None:
    """Drop memoized datasets/models (for tests and long-lived processes)."""
    _CONTEXT_CACHE.clear()
    _CHAIN_MAE_CACHE.clear()


def _telecom_context(args):
    """Dataset + trained pooled models, built once per process."""
    key = _cache_key(args)
    if key not in _CONTEXT_CACHE:
        from .eval import train_env2vec_telecom, train_rfnn_all_telecom

        n_focus = min(11, max(2, args.chains // 4))
        dataset = generate_telecom(
            TelecomConfig(n_chains=args.chains, n_focus=n_focus, seed=args.seed)
        )
        env2vec = train_env2vec_telecom(dataset, fast=not args.full)
        rfnn_all = train_rfnn_all_telecom(dataset, fast=not args.full)
        _CONTEXT_CACHE[key] = (dataset, env2vec, rfnn_all)
    return _CONTEXT_CACHE[key]


def _run_table4(args) -> str:
    from .eval import run_kdn_comparison

    result = run_kdn_comparison(seed=args.seed, n_nn_runs=10 if args.full else 2, fast=not args.full)
    lines = [result.table4(), "", "Table 3 splits:"]
    for name, dataset in load_all_kdn(seed=args.seed).items():
        train, val, test = dataset.split()
        lines.append(f"  {name:<9} {len(train)}/{len(val)}/{len(test)}")
    return "\n".join(lines)


def _run_figure1(args) -> str:
    from .eval import run_figure1
    from .eval.plots import ascii_heatmap

    dataset, _, _ = _telecom_context(args)
    result = run_figure1(dataset)
    return "\n".join([result.summary(), "", ascii_heatmap(result.weights)])


def _chain_mae(args):
    key = _cache_key(args)
    if key not in _CHAIN_MAE_CACHE:
        from .eval import run_chain_mae

        dataset, env2vec, rfnn_all = _telecom_context(args)
        _CHAIN_MAE_CACHE[key] = run_chain_mae(dataset, env2vec, rfnn_all)
    return _CHAIN_MAE_CACHE[key]


def _run_figure3(args) -> str:
    result = _chain_mae(args)
    improvement = result.improvement("env2vec", "ridge_ts")
    return "\n".join(
        [
            result.mean_table(),
            f"Env2Vec vs Ridge_ts: mean per-chain MAE improvement {improvement.mean():+.3f}",
        ]
    )


def _run_figure4(args) -> str:
    from .eval.plots import ascii_cdf

    result = _chain_mae(args)
    return ascii_cdf({m: v for m, v in result.per_chain_mae.items()})


def _run_table5(args) -> str:
    from .eval import run_anomaly_table

    dataset, env2vec, rfnn_all = _telecom_context(args)
    result = run_anomaly_table(dataset, env2vec, rfnn_all)
    return result.table("Table 5 — performance problems detected")


def _run_table6(args) -> str:
    from .eval import run_unseen_table

    dataset, _, _ = _telecom_context(args)
    result = run_unseen_table(dataset, fast=not args.full, seed=args.seed)
    return result.table("Table 6 — unseen environments")


def _run_table7(args) -> str:
    from .eval import run_anomaly_table, run_coverage_table

    dataset, env2vec, _ = _telecom_context(args)
    table5 = run_anomaly_table(
        dataset, env2vec, None, gammas=(1.0,), include_htm=False, include_ridge=False
    )
    return run_coverage_table(dataset, table5).table()


def _run_figure6(args) -> str:
    from .eval import run_embedding_pca
    from .eval.plots import ascii_scatter

    dataset, env2vec, _ = _telecom_context(args)
    result = run_embedding_pca(env2vec, dataset)
    header = (
        f"Figure 6 — embedding PCA over {len(result.environments)} environments; "
        f"build-type cluster ratio {result.cluster_ratio():.3f}"
    )
    return "\n".join([header, ascii_scatter(result.coordinates, result.build_types)])


def _run_holdout(args) -> str:
    from .eval import cf_group_holdout, em_field_holdout

    dataset, _, _ = _telecom_context(args)
    cf = cf_group_holdout(dataset, fast=not args.full, seed=args.seed)
    em = em_field_holdout(dataset, fast=not args.full, seed=args.seed)
    return "\n\n".join(
        [cf.table("§6 holdout — contextual feature groups"), em.table("§6 holdout — EM fields")]
    )


def _run_campaign(args) -> str:
    from .workflow import TestingCampaign, observability_summary

    dataset, _, _ = _telecom_context(args)
    campaign = TestingCampaign(
        model_params={"max_epochs": 15, "batch_size": 256},
        n_workers=getattr(args, "workers", 1),
    )
    reports = campaign.run(dataset)
    lines = ["Multi-day testing campaign (collect -> monitor -> mask -> retrain):"]
    for report in reports:
        lines.append(
            f"  day {report.day}: {report.executions_run} executions, "
            f"{report.alarms_raised} alarms, {len(report.flagged_environments)} newly "
            f"flagged, model v{report.model_version}"
        )
    lines.append(f"  masked environments at end: {len(campaign.masked_environments)}")
    lines.append("")
    lines.append(observability_summary(campaign))
    return "\n".join(lines)


def _run_corpus(args) -> str:
    from .data import corpus_stats

    dataset, _, _ = _telecom_context(args)
    return corpus_stats(dataset).table()


def _run_calibration(args) -> str:
    import numpy as np

    from .core import calibration_report
    from .eval.telecom_experiments import _predict_execution

    dataset, env2vec, _ = _telecom_context(args)
    errors = []
    for chain in dataset.focus_chains:
        for execution in chain.history:
            predicted, observed = _predict_execution(env2vec, execution, env2vec.n_lags)
            errors.append(predicted - observed)
    report = calibration_report(np.concatenate(errors))
    return "§3.2 Gaussian-error assumption check\n" + report.table()


def _serve_main(argv: list[str]) -> int:
    """``repro serve``: load-generate against a live Env2VecService.

    Trains a quick model over a small telecom corpus, starts the serving
    layer, replays a seeded bursty predict workload through the
    :class:`~repro.serve.ServeClient` facade, and prints both the
    client-side latency report and the service's own dogfooded metrics
    (PromQL quantiles over the exported ``repro_serve_*`` histograms).
    """
    import asyncio

    parser = argparse.ArgumentParser(
        prog="repro serve", description="always-on serving layer demo + load generator"
    )
    parser.add_argument("--chains", type=int, default=24, help="telecom corpus size")
    parser.add_argument("--requests", type=int, default=200, help="predict requests to replay")
    parser.add_argument("--seed", type=int, default=7, help="corpus + arrival seed")
    parser.add_argument("--max-batch", type=int, default=32, help="micro-batch size cap")
    parser.add_argument(
        "--max-wait", type=float, default=0.002, help="micro-batch linger seconds"
    )
    parser.add_argument("--depth", type=int, default=256, help="admission queue depth bound")
    parser.add_argument(
        "--burst", type=float, default=16.0, help="mean requests per arrival burst"
    )
    parser.add_argument(
        "--gap", type=float, default=0.005, help="mean seconds between bursts"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised worker processes (0 = execute on the event loop)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline budget in seconds (default: none)",
    )
    parser.add_argument(
        "--kill-rate",
        type=float,
        default=0.0,
        help="seeded chaos: probability a worker dies mid-batch",
    )
    parser.add_argument(
        "--stall-rate",
        type=float,
        default=0.0,
        help="seeded chaos: probability a worker hangs past its heartbeat",
    )
    args = parser.parse_args(argv)

    from .serve import (
        Env2VecService,
        LoadProfile,
        PredictRequest,
        ServeConfig,
        arrival_offsets,
        run_load,
    )
    from .workflow import ModelStore, TrainingPipeline, promql_query

    n_focus = min(11, max(2, args.chains // 4))
    dataset = generate_telecom(
        TelecomConfig(n_chains=args.chains, n_focus=n_focus, seed=args.seed)
    )
    store = ModelStore()
    TrainingPipeline(
        store, n_lags=3, model_params={"max_epochs": 10, "batch_size": 256}, seed=args.seed
    ).train(dataset.history_training_series())

    executions = [chain.current for chain in dataset.chains]
    requests = [
        PredictRequest(
            execution=executions[i % len(executions)],
            request_id=str(i),
            deadline_seconds=args.deadline,
        )
        for i in range(args.requests)
    ]
    profile = LoadProfile(
        n_requests=args.requests,
        burst_size=args.burst,
        burst_gap=args.gap,
        seed=args.seed,
    )
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        max_queue_depth=args.depth,
        n_workers=args.workers,
    )
    chaos = None
    if args.kill_rate or args.stall_rate:
        from .resilience import ChaosProfile

        chaos = ChaosProfile(
            seed=args.seed,
            worker_kill_rate=args.kill_rate,
            worker_stall_rate=args.stall_rate,
        )

    async def scenario():
        service = Env2VecService(store, config=config, self_monitor=True, chaos=chaos)
        async with service:
            report = await run_load(
                service.client(), requests, arrival_offsets(profile)
            )
            health = service.health()
        return service, report, health

    service, report, health = asyncio.run(scenario())
    summary = report.summary()
    print(f"### serve — {args.requests} requests over {args.chains} chains")
    print(
        f"throughput {summary['throughput_rps']:.1f} req/s over "
        f"{summary['makespan_seconds']:.2f}s; "
        f"{summary['n_completed']} ok, {summary['n_rejected']} rejected, "
        f"{summary['n_failed']} failed"
    )
    print(
        f"client latency p50/p95/p99: {summary['p50_seconds'] * 1e3:.2f} / "
        f"{summary['p95_seconds'] * 1e3:.2f} / {summary['p99_seconds'] * 1e3:.2f} ms"
    )
    alarms = service.alarm_store.fetch()
    print(f"alarms raised while serving: {len(alarms)}")
    print(
        f"health: live={health.live} ready={health.ready} "
        f"degraded={health.degraded} breaker={health.breaker_state} "
        f"workers={health.workers_ready}/{health.n_workers}"
    )
    if service.supervisor is not None:
        supervisor = service.supervisor
        print(
            f"supervisor: {supervisor.restarts} restarts, "
            f"{supervisor.reenqueued} in-flight batches re-enqueued, "
            f"{service.admission.shed} deadline-shed, "
            f"{len(service.dead_letters)} dead-lettered"
        )

    at = service.exporter.last_scrape
    tsdb = service.exporter.tsdb
    print("dogfooded metrics (PromQL over the serve observability TSDB):")
    for quantile in (0.5, 0.95, 0.99):
        samples = promql_query(
            tsdb,
            f'histogram_quantile({quantile}, repro_serve_request_seconds_bucket{{kind="predict"}})',
            at,
        )
        for sample in samples:
            print(f"  p{int(quantile * 100):<2} repro_serve_request_seconds: {sample.value * 1e3:.2f} ms")
    for expr in ("repro_serve_batches_total", "repro_serve_rejected_total"):
        for sample in promql_query(tsdb, expr, at):
            print(f"  {expr}: {sample.value:.0f}")
    return 0


_RUNNERS = {
    "table4": _run_table4,
    "figure1": _run_figure1,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "table5": _run_table5,
    "table6": _run_table6,
    "table7": _run_table7,
    "figure6": _run_figure6,
    "holdout": _run_holdout,
    "campaign": _run_campaign,
    "corpus": _run_corpus,
    "calibration": _run_calibration,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Env2Vec (EuroSys 2020) reproduction — regenerate paper tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument("--full", action="store_true", help="paper-scale training protocol")
    parser.add_argument("--seed", type=int, default=7, help="corpus seed (default 7)")
    parser.add_argument(
        "--chains", type=int, default=125, help="telecom corpus size (default 125)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="campaign scoring workers (default 1 = serial; >1 uses repro.parallel)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        # The lint engine owns its own argparse surface (--format,
        # --baseline, ...); dispatch before the experiment parser rejects it.
        from .analysis import main as analysis_main

        return analysis_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same pattern: the serving demo owns its own knobs (--requests,
        # --max-batch, ...), so dispatch before the experiment parser.
        return _serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        start = time.perf_counter()
        output = _RUNNERS[name](args)
        elapsed = time.perf_counter() - start
        print(f"\n### {name} ({elapsed:.1f}s)\n{output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
