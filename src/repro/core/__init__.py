"""The paper's primary contribution: the Env2Vec model and its workflow parts.

- :mod:`~repro.core.embeddings` — per-EM-field embedding lookup tables with
  unknown rows (§3.1).
- :mod:`~repro.core.model` — the FNN + GRU + embeddings architecture with
  the Hadamard prediction head (eq. 2) and the §3.2 head variants.
- :mod:`~repro.core.baselines` — FNN, RFNN and RFNN_all (§4.1.3).
- :mod:`~repro.core.anomaly` — the gamma·sigma contextual anomaly detector
  with the 5% absolute false-alarm filter (§3.2, §4.2.2).
- :mod:`~repro.core.unseen` — the §4.3 unseen-environment protocol.
"""

from .anomaly import (
    Alarm,
    AlarmScore,
    AnomalyReport,
    ContextualAnomalyDetector,
    GaussianErrorModel,
    merge_flags_into_alarms,
    score_alarms,
)
from .calibration import (
    CalibrationReport,
    QuantileErrorModel,
    calibration_report,
    gamma_to_quantile,
)
from .baselines import (
    FNNModel,
    FNNRegressor,
    PAPER_FNN_DROPOUTS,
    PAPER_FNN_HIDDEN_UNITS,
    PAPER_RFNN_LAGS,
    RFNNModel,
    RFNNRegressor,
)
from .embeddings import EnvironmentEmbeddings, EnvironmentVocabulary
from .model import Env2VecModel, Env2VecRegressor, PREDICTION_HEADS
from .unseen import BlindedSplit, blind_chains, composable, field_coverage

__all__ = [
    "EnvironmentVocabulary",
    "EnvironmentEmbeddings",
    "Env2VecModel",
    "Env2VecRegressor",
    "PREDICTION_HEADS",
    "FNNModel",
    "FNNRegressor",
    "RFNNModel",
    "RFNNRegressor",
    "PAPER_FNN_HIDDEN_UNITS",
    "PAPER_FNN_DROPOUTS",
    "PAPER_RFNN_LAGS",
    "GaussianErrorModel",
    "ContextualAnomalyDetector",
    "Alarm",
    "AnomalyReport",
    "AlarmScore",
    "merge_flags_into_alarms",
    "score_alarms",
    "QuantileErrorModel",
    "CalibrationReport",
    "calibration_report",
    "gamma_to_quantile",
    "BlindedSplit",
    "blind_chains",
    "field_coverage",
    "composable",
]
