"""Contextual anomaly detection (paper §3.2 "Anomaly detection", §4.2.2).

Given a fitted characterization model, the detector:

1. fits a Gaussian N(mu_err, sigma_err) on the prediction errors over the
   *previous, non-problematic* builds of a build chain;
2. for the next build, flags timestep p when the error deviates from the
   mean by more than ``gamma * sigma_err`` **and** — the false-alarm filter
   of §4.2.2 — the absolute deviation |y'_p − y_p| exceeds 5 (CPU
   percentage points);
3. merges consecutive flagged timesteps into *alarms*, each reporting the
   interval of the deviation (workflow step 4).

For previously unseen environments (§4.3) there is no historical error
distribution; :meth:`ContextualAnomalyDetector.detect_self_calibrated`
applies gamma to the error distribution "computed for all timesteps in the
test execution" instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_observability

__all__ = [
    "GaussianErrorModel",
    "Alarm",
    "AnomalyReport",
    "ContextualAnomalyDetector",
    "merge_flags_into_alarms",
    "score_alarms",
    "AlarmScore",
]

#: §4.2.2 — alarms additionally require an absolute CPU deviation above 5%.
DEFAULT_ABS_THRESHOLD = 5.0

_OBS = get_observability()
_M_DETECTIONS = _OBS.counter(
    "repro_detector_detections_total", "Executions scored by the anomaly detector."
)
_M_DET_ALARMS = _OBS.counter(
    "repro_detector_alarms_total", "Alarms produced by the anomaly detector."
)
_M_FLAGS = _OBS.counter(
    "repro_detector_flagged_timesteps_total",
    "Timesteps flagged anomalous (after the absolute filter).",
)
_M_FILTERED = _OBS.counter(
    "repro_detector_filtered_timesteps_total",
    "Timesteps over the gamma*sigma rule but suppressed by the 5% absolute filter.",
)


@dataclass
class GaussianErrorModel:
    """The N(mu_err, sigma_err) model of normal prediction error."""

    mu: float
    sigma: float

    @classmethod
    def fit(cls, errors: np.ndarray) -> "GaussianErrorModel":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size < 2:
            raise ValueError("need at least 2 error samples to fit a Gaussian")
        if not np.isfinite(errors).all():
            raise ValueError("errors contain NaN or infinite values")
        # Sample std (Bessel-corrected): build chains have few prior builds,
        # and ddof=0 biases sigma low on small n, making the gamma*sigma
        # rule over-alarm. n >= 2 is enforced above, so ddof=1 is defined.
        sigma = float(errors.std(ddof=1))
        return cls(mu=float(errors.mean()), sigma=max(sigma, 1e-9))

    def zscore(self, errors: np.ndarray) -> np.ndarray:
        return (np.asarray(errors, dtype=np.float64) - self.mu) / self.sigma

    def is_anomalous(self, errors: np.ndarray, gamma: float) -> np.ndarray:
        """|error − mu| > gamma * sigma, per timestep."""
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        return np.abs(self.zscore(errors)) > gamma


@dataclass(frozen=True)
class Alarm:
    """One reported performance problem: a contiguous flagged interval."""

    start: int
    end: int  # exclusive
    peak_deviation: float

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("alarm needs 0 <= start < end")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps_interval(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end


@dataclass
class AnomalyReport:
    """Detection output for one test execution."""

    flags: np.ndarray  # (timesteps,) bool
    alarms: list[Alarm]
    errors: np.ndarray  # per-timestep prediction error y' - y
    gamma: float

    @property
    def n_alarms(self) -> int:
        return len(self.alarms)

    @property
    def flagged_fraction(self) -> float:
        return float(self.flags.mean()) if self.flags.size else 0.0


def merge_flags_into_alarms(flags: np.ndarray, deviations: np.ndarray) -> list[Alarm]:
    """Group consecutive flagged timesteps into alarms with peak deviation."""
    flags = np.asarray(flags, dtype=bool)
    deviations = np.asarray(deviations, dtype=np.float64)
    if flags.shape != deviations.shape:
        raise ValueError("flags and deviations must align")
    alarms: list[Alarm] = []
    start = None
    for i, flagged in enumerate(flags):
        if flagged and start is None:
            start = i
        elif not flagged and start is not None:
            peak = float(np.abs(deviations[start:i]).max())
            alarms.append(Alarm(start=start, end=i, peak_deviation=peak))
            start = None
    if start is not None:
        peak = float(np.abs(deviations[start:]).max())
        alarms.append(Alarm(start=start, end=len(flags), peak_deviation=peak))
    return alarms


class ContextualAnomalyDetector:
    """Implements the gamma·sigma rule plus the 5% absolute filter."""

    def __init__(self, gamma: float = 2.0, abs_threshold: float = DEFAULT_ABS_THRESHOLD):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if abs_threshold < 0:
            raise ValueError("abs_threshold must be non-negative")
        self.gamma = gamma
        self.abs_threshold = abs_threshold

    def fit_error_model(self, predicted: np.ndarray, observed: np.ndarray) -> GaussianErrorModel:
        """Fit the normal-build error distribution from historical builds."""
        predicted = np.asarray(predicted, dtype=np.float64)
        observed = np.asarray(observed, dtype=np.float64)
        if predicted.shape != observed.shape:
            raise ValueError("predicted and observed must align")
        return GaussianErrorModel.fit(predicted - observed)

    def detect(
        self,
        predicted: np.ndarray,
        observed: np.ndarray,
        error_model: GaussianErrorModel,
    ) -> AnomalyReport:
        """Flag anomalies in the current build against a fitted error model."""
        predicted = np.asarray(predicted, dtype=np.float64)
        observed = np.asarray(observed, dtype=np.float64)
        if predicted.shape != observed.shape:
            raise ValueError("predicted and observed must align")
        errors = predicted - observed
        flags = error_model.is_anomalous(errors, self.gamma)
        over_sigma = int(flags.sum())
        if self.abs_threshold > 0:
            flags &= np.abs(errors) > self.abs_threshold
        alarms = merge_flags_into_alarms(flags, errors)
        _M_DETECTIONS.inc()
        _M_DET_ALARMS.inc(len(alarms))
        _M_FLAGS.inc(int(flags.sum()))
        _M_FILTERED.inc(over_sigma - int(flags.sum()))
        return AnomalyReport(
            flags=flags,
            alarms=alarms,
            errors=errors,
            gamma=self.gamma,
        )

    def detect_many(
        self,
        predicted_rows: list[np.ndarray],
        observed_rows: list[np.ndarray],
        error_models: list[GaussianErrorModel | None] | None = None,
    ) -> list[AnomalyReport]:
        """Score many executions at once, bitwise equal to per-row detect.

        Rows are grouped by timestep count and each group is scored with
        one set of reductions over a stacked ``(rows, timesteps)`` array
        instead of ~10 tiny numpy calls per row. Every reduction runs
        along ``axis=1`` — each row independently — so flags, errors and
        alarms are bitwise identical to calling :meth:`detect` (or
        :meth:`detect_self_calibrated` for rows without an error model)
        row by row. A single-row call pays the same dispatch cost as
        :meth:`detect`; the win is for coalescing callers (the
        ``repro.serve`` micro-batcher, the parallel campaign executor),
        which amortize it across the whole group.
        """
        if len(predicted_rows) != len(observed_rows):
            raise ValueError("predicted_rows and observed_rows must align")
        if error_models is None:
            error_models = [None] * len(predicted_rows)
        if len(error_models) != len(predicted_rows):
            raise ValueError("error_models must align with the rows")

        groups: dict[int, list[int]] = {}
        rows: list[tuple[np.ndarray, np.ndarray]] = []
        for index, (predicted, observed) in enumerate(zip(predicted_rows, observed_rows)):
            predicted = np.asarray(predicted, dtype=np.float64)
            observed = np.asarray(observed, dtype=np.float64)
            if predicted.shape != observed.shape:
                raise ValueError("predicted and observed must align")
            rows.append((predicted, observed))
            groups.setdefault(len(predicted), []).append(index)

        reports: list[AnomalyReport | None] = [None] * len(rows)
        for width, indices in groups.items():
            if width < 2:
                # Degenerate rows keep the exact per-row error behavior
                # (a self-calibrated fit on < 2 samples must raise).
                for index in indices:
                    predicted, observed = rows[index]
                    model = error_models[index]
                    if model is None:
                        reports[index] = self.detect_self_calibrated(predicted, observed)
                    else:
                        reports[index] = self.detect(predicted, observed, model)
                continue
            errors = np.stack([rows[index][0] - rows[index][1] for index in indices])
            mu = np.empty((len(indices), 1))
            sigma = np.empty((len(indices), 1))
            calibrate = [
                slot for slot, index in enumerate(indices) if error_models[index] is None
            ]
            if calibrate:
                own = errors[calibrate]
                if not np.isfinite(own).all():
                    raise ValueError("errors contain NaN or infinite values")
                mu[calibrate, 0] = own.mean(axis=1)
                sigma[calibrate, 0] = np.maximum(own.std(axis=1, ddof=1), 1e-9)
            for slot, index in enumerate(indices):
                model = error_models[index]
                if model is not None:
                    mu[slot, 0] = model.mu
                    sigma[slot, 0] = model.sigma
            flags = np.abs((errors - mu) / sigma) > self.gamma
            over_sigma = int(flags.sum())
            if self.abs_threshold > 0:
                flags &= np.abs(errors) > self.abs_threshold
            flagged = int(flags.sum())
            _M_DETECTIONS.inc(len(indices))
            _M_FLAGS.inc(flagged)
            _M_FILTERED.inc(over_sigma - flagged)
            for slot, index in enumerate(indices):
                alarms = merge_flags_into_alarms(flags[slot], errors[slot])
                _M_DET_ALARMS.inc(len(alarms))
                reports[index] = AnomalyReport(
                    flags=flags[slot],
                    alarms=alarms,
                    errors=errors[slot],
                    gamma=self.gamma,
                )
        return reports

    def detect_self_calibrated(self, predicted: np.ndarray, observed: np.ndarray) -> AnomalyReport:
        """§4.3 unseen-environment mode: calibrate on the execution itself.

        "As there is no previous prediction error distribution associated
        to a test execution in an unseen environment, we apply the
        user-defined gamma to the prediction error distribution computed
        for all timesteps in the test execution."
        """
        predicted = np.asarray(predicted, dtype=np.float64)
        observed = np.asarray(observed, dtype=np.float64)
        error_model = self.fit_error_model(predicted, observed)
        return self.detect(predicted, observed, error_model)


@dataclass
class AlarmScore:
    """Alarm-quality metrics: the paper's A_T and A_F (§4.2.2).

    ``correct_alarms`` counts raised alarms that overlap ground truth (the
    engineer-labelled true positives); ``problems_detected`` counts
    distinct ground-truth problems hit by at least one alarm — the
    quantity behind "Env2Vec with γ=1 can detect the highest number of
    problems (25)".
    """

    n_alarms: int
    correct_alarms: int
    problems_detected: int = 0
    total_problems: int = 0

    @property
    def true_alarm_rate(self) -> float:
        """A_T = N_tp / (N_tp + N_fp); 0 when no alarms were raised."""
        return self.correct_alarms / self.n_alarms if self.n_alarms else 0.0

    @property
    def false_alarm_rate(self) -> float:
        """A_F = 1 − A_T (defined as 0 when no alarms were raised)."""
        return 1.0 - self.true_alarm_rate if self.n_alarms else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of alarm precision (A_T) and problem recall.

        Precision is the true-alarm rate; recall is the fraction of
        ground-truth problems hit by at least one alarm. Used to compare
        detection quality between clean and degraded (chaos) campaigns
        with a single number. 0 when either side has no support.
        """
        precision = self.true_alarm_rate
        recall = self.problems_detected / self.total_problems if self.total_problems else 0.0
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def __add__(self, other: "AlarmScore") -> "AlarmScore":
        return AlarmScore(
            n_alarms=self.n_alarms + other.n_alarms,
            correct_alarms=self.correct_alarms + other.correct_alarms,
            problems_detected=self.problems_detected + other.problems_detected,
            total_problems=self.total_problems + other.total_problems,
        )


def score_alarms(
    alarms: list[Alarm],
    truth_mask: np.ndarray,
    problem_intervals: list[tuple[int, int]] | None = None,
) -> AlarmScore:
    """Count alarms that overlap any ground-truth anomalous timestep.

    An alarm is *correct* (a true positive) when its interval overlaps the
    ground-truth anomaly mask; otherwise it is a false positive. This
    mirrors the paper's per-alarm labelling by testing engineers. When
    ``problem_intervals`` is given, also count how many distinct problems
    were detected by at least one alarm.
    """
    truth_mask = np.asarray(truth_mask, dtype=bool)
    correct = sum(1 for alarm in alarms if truth_mask[alarm.start : alarm.end].any())
    detected = 0
    intervals = problem_intervals or []
    for start, end in intervals:
        if start >= end:
            raise ValueError(f"invalid problem interval ({start}, {end})")
        if any(alarm.overlaps_interval(start, end) for alarm in alarms):
            detected += 1
    return AlarmScore(
        n_alarms=len(alarms),
        correct_alarms=correct,
        problems_detected=detected,
        total_problems=len(intervals),
    )
