"""Environment embeddings (paper §3.1, "Embeddings for environments").

For each EM field (testbed, SUT, testcase, build) there is a lookup table
whose rows are 10-dimensional embeddings, one per field value seen in
training, plus an *unknown* row — "similar to handling unknown words in
NLP, the lookup table also contains an additional unknown vector/embedding
to deal with an unknown environment that has not appeared in the training
data before".

Because each field has its own table, an environment never seen as a whole
can still be embedded by *mix-and-matching* the per-field embeddings it
shares with known environments (§4.3, Figure 5) — the basis for testing
previously unseen environments.
"""

from __future__ import annotations

import numpy as np

from ..data.environment import EM_FIELDS, Environment
from ..ml.preprocessing import LabelEncoder
from ..nn.init import ensure_rng
from ..nn.layers import Embedding, Module
from ..nn.tensor import Tensor

__all__ = ["EnvironmentVocabulary", "EnvironmentEmbeddings"]


class EnvironmentVocabulary:
    """Per-field label encoders over a training set of environments."""

    def __init__(self, fields: tuple[str, ...] = EM_FIELDS):
        if not fields:
            raise ValueError("need at least one EM field")
        self.fields = tuple(fields)
        self._encoders: dict[str, LabelEncoder] = {}

    def fit(self, environments: list[Environment]) -> "EnvironmentVocabulary":
        if not environments:
            raise ValueError("cannot fit a vocabulary on zero environments")
        for field in self.fields:
            encoder = LabelEncoder()
            encoder.fit([getattr(env, field) for env in environments])
            self._encoders[field] = encoder
        return self

    @property
    def fitted(self) -> bool:
        return bool(self._encoders)

    def to_config(self) -> dict:
        """JSON-serializable snapshot of the fitted vocabulary."""
        self._require_fitted()
        return {
            "fields": list(self.fields),
            "classes": {field: self._encoders[field].classes_ for field in self.fields},
        }

    @classmethod
    def from_config(cls, config: dict) -> "EnvironmentVocabulary":
        vocabulary = cls(fields=tuple(config["fields"]))
        for field in vocabulary.fields:
            vocabulary._encoders[field] = LabelEncoder.from_classes(config["classes"][field])
        return vocabulary

    def vocabulary_sizes(self) -> dict[str, int]:
        """Per-field table sizes (known values + the unknown row)."""
        self._require_fitted()
        return {field: encoder.vocabulary_size for field, encoder in self._encoders.items()}

    def encode(self, environments: list[Environment]) -> np.ndarray:
        """Environments -> (n, n_fields) integer id matrix.

        Callers pass one environment per *window*, so the list is runs of
        identical values (every window of an execution shares its EM
        tuple). Each distinct environment is encoded once and the rows
        gathered back — identical ids, without re-hashing four strings
        per window.
        """
        self._require_fitted()
        unique: dict[Environment, int] = {}
        index = np.empty(len(environments), dtype=np.intp)
        for i, env in enumerate(environments):
            slot = unique.get(env)
            if slot is None:
                slot = unique[env] = len(unique)
            index[i] = slot
        columns = [
            self._encoders[field].transform([getattr(env, field) for env in unique])
            for field in self.fields
        ]
        return np.stack(columns, axis=1)[index]

    def encode_one(self, environment: Environment) -> np.ndarray:
        return self.encode([environment])[0]

    def is_known(self, environment: Environment) -> dict[str, bool]:
        """Which EM fields of this environment were seen in training.

        §6: an environment whose *testbed* never appeared cannot be
        meaningfully embedded; this lets callers check before trusting
        predictions.
        """
        self._require_fitted()
        ids = self.encode_one(environment)
        return {
            field: int(ids[i]) != self._encoders[field].unknown_id
            for i, field in enumerate(self.fields)
        }

    def known_values(self, field: str) -> list[str]:
        self._require_fitted()
        return list(self._encoders[field].classes_)

    def extend(self, environments: list[Environment]) -> dict[str, list[str]]:
        """Register new EM values; returns the per-field lists of additions.

        Existing ids are preserved (embedding rows stay valid); the unknown
        id shifts to stay last. Pair with
        :meth:`EnvironmentEmbeddings.grow_tables` when extending a trained
        model for incremental retraining (§4.3).
        """
        self._require_fitted()
        return {
            field: self._encoders[field].extend(
                getattr(env, field) for env in environments
            )
            for field in self.fields
        }

    def _require_fitted(self) -> None:
        if not self._encoders:
            raise RuntimeError("vocabulary is not fitted; call fit() first")


class EnvironmentEmbeddings(Module):
    """The per-field lookup tables; output is the concatenation C (eq. 1).

    ``unknown_dropout`` randomly replaces a fraction of ids with the
    unknown id *during training only*. This trains the ``<unk>`` row to a
    sensible field-average embedding, so a genuinely new value at test time
    (e.g. the new build version under test, which by definition never
    appeared in training) degrades gracefully instead of hitting an
    arbitrary random vector — the embedding-table analogue of how NLP
    models train their ``<unk>`` token.
    """

    def __init__(
        self,
        vocabulary: EnvironmentVocabulary,
        embedding_dim: int = 10,
        unknown_dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if not 0.0 <= unknown_dropout < 1.0:
            raise ValueError("unknown_dropout must be in [0, 1)")
        rng = ensure_rng(rng)
        self.vocabulary = vocabulary
        self.embedding_dim = embedding_dim
        self.unknown_dropout = unknown_dropout
        self._rng = rng
        sizes = vocabulary.vocabulary_sizes()
        self.tables = {
            field: Embedding(sizes[field], embedding_dim, rng=rng) for field in vocabulary.fields
        }

    @property
    def output_dim(self) -> int:
        """Dimensionality of C = [ec^1, ..., ec^k]."""
        return self.embedding_dim * len(self.vocabulary.fields)

    def forward(self, ids: np.ndarray) -> Tensor:
        """(n, n_fields) id matrix -> (n, output_dim) concatenated embeddings."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] != len(self.vocabulary.fields):
            raise ValueError(
                f"expected ids of shape (n, {len(self.vocabulary.fields)}); got {ids.shape}"
            )
        pieces = []
        for i, field in enumerate(self.vocabulary.fields):
            column = ids[:, i]
            if self.training and self.unknown_dropout > 0.0:
                unknown_id = self.tables[field].num_embeddings - 1
                mask = self._rng.random(len(column)) < self.unknown_dropout
                column = np.where(mask, unknown_id, column)
            pieces.append(self.tables[field](column))
        return Tensor.concat(pieces, axis=1)

    def table_arrays(self) -> list[np.ndarray]:
        """Raw per-field weight matrices in ``vocabulary.fields`` order.

        The inference engine snapshots these into an
        :class:`~repro.nn.inference.EmbeddingRowCache`; keeping the field
        order here means the cache's concatenation matches eq. 1 exactly.
        """
        return [self.tables[field].weight.data for field in self.vocabulary.fields]

    def grow_tables(self, added: dict[str, list[str]], noise: float = 0.01) -> None:
        """Expand the lookup tables after a vocabulary extension.

        For each field with ``m`` new values, ``m`` rows are inserted just
        before the unknown row (which stays last, matching the extended
        encoder's id layout). New rows start from the trained ``<unk>``
        embedding plus small noise — the best prior for a value we know
        nothing about — and then specialize during incremental retraining.
        """
        for field, new_values in added.items():
            if not new_values:
                continue
            table = self.tables[field]
            weights = table.weight.data
            unk_row = weights[-1]
            fresh = unk_row + noise * self._rng.standard_normal(
                (len(new_values), self.embedding_dim)
            )
            table.weight.data = np.vstack([weights[:-1], fresh, unk_row[None, :]])
            table.num_embeddings = len(table.weight.data)
            expected = self.vocabulary.vocabulary_sizes()[field]
            if table.num_embeddings != expected:
                raise RuntimeError(
                    f"table for {field!r} has {table.num_embeddings} rows; "
                    f"vocabulary expects {expected}"
                )

    def embed_environments(self, environments: list[Environment]) -> np.ndarray:
        """Concatenated embedding matrix for analysis (e.g. Figure 6's PCA)."""
        ids = self.vocabulary.encode(environments)
        from ..nn.tensor import no_grad

        was_training = self.training
        self.eval()  # never apply unknown-dropout in analysis
        try:
            with no_grad():
                return self.forward(ids).numpy().copy()
        finally:
            if was_training:
                self.train()
