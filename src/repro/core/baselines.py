"""Neural baselines of §4.1.3: FNN, RFNN, and RFNN_all.

- **FNN** [29, 30]: a feedforward network with one hidden layer over the
  contextual features only; the paper tunes hidden units over powers of two
  {32..1024} and dropout over {0.0..0.9}.
- **RFNN**: Env2Vec's GRU + FNN backbone *without* environment embeddings,
  trained **per environment**; prediction comes from the dense layer with a
  linear regression head.
- **RFNN_all**: the same architecture trained once on pooled data from
  *all* environments — the "other extreme" that treats every environment
  identically, which §4.1.4 shows underperforms Env2Vec because it cannot
  separate environments.

Both RFNN variants are served by :class:`RFNNRegressor`; RFNN vs RFNN_all
is purely a question of which data you fit it on.
"""

from __future__ import annotations

import numpy as np

from ..ml.base import Estimator
from ..ml.preprocessing import StandardScaler
from ..nn.encoders import create_encoder, validate_encoder_name
from ..nn.init import ensure_rng
from ..nn.inference import CompiledDense, compile_plan, register_compiler
from ..nn.layers import Dense, Dropout, Module
from ..nn.tensor import Tensor
from ..nn.training import EarlyStopping, Trainer, TrainingHistory

__all__ = [
    "FNNModel",
    "FNNRegressor",
    "RFNNModel",
    "RFNNRegressor",
    "PAPER_FNN_HIDDEN_UNITS",
    "PAPER_FNN_DROPOUTS",
    "PAPER_RFNN_LAGS",
]

#: §4.1.3 hyper-parameter grids.
PAPER_FNN_HIDDEN_UNITS = (32, 64, 128, 256, 512, 1024)
PAPER_FNN_DROPOUTS = tuple(round(0.1 * i, 1) for i in range(10))
PAPER_RFNN_LAGS = tuple(range(1, 10))


class FNNModel(Module):
    """One sigmoid hidden layer + dropout + linear output."""

    def __init__(
        self,
        n_features: int,
        hidden: int = 128,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = ensure_rng(rng)
        self.hidden_layer = Dense(n_features, hidden, activation="sigmoid", rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.output = Dense(hidden, 1, rng=rng)

    def forward(self, cf: np.ndarray) -> Tensor:
        hidden = self.dropout(self.hidden_layer(Tensor(np.asarray(cf, dtype=np.float64))))
        return self.output(hidden).reshape(-1)


class RFNNModel(Module):
    """Sequence encoder + FNN backbone with a linear regression head (no embeddings)."""

    def __init__(
        self,
        n_features: int,
        n_lags: int,
        fnn_hidden: int = 64,
        gru_hidden: int = 16,
        dense_dim: int = 40,
        dropout: float = 0.1,
        encoder: str = "gru",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if n_lags < 1:
            raise ValueError("n_lags must be >= 1")
        rng = ensure_rng(rng)
        self.n_features = n_features
        self.n_lags = n_lags
        self.fnn = Dense(n_features, fnn_hidden, activation="sigmoid", rng=rng)
        self.fnn_dropout = Dropout(dropout, rng=rng)
        self.encoder = create_encoder(encoder, 1, gru_hidden, rng=rng)
        self.combine = Dense(fnn_hidden + self.encoder.output_dim, dense_dim, rng=rng)
        self.output = Dense(dense_dim, 1, rng=rng)

    def forward(self, cf: np.ndarray, history: np.ndarray) -> Tensor:
        cf = np.asarray(cf, dtype=np.float64)
        history = np.asarray(history, dtype=np.float64)
        if cf.shape[1] != self.n_features:
            raise ValueError(f"expected {self.n_features} contextual features, got {cf.shape[1]}")
        if history.shape[1] != self.n_lags:
            raise ValueError(f"expected history window of {self.n_lags}, got {history.shape[1]}")
        v_fs = self.fnn_dropout(self.fnn(Tensor(cf)))
        v_ts = self.encoder(Tensor(history[:, :, None]))
        v_d = self.combine(Tensor.concat([v_ts, v_fs], axis=1))
        return self.output(v_d).reshape(-1)


@register_compiler(FNNModel)
def _compile_fnn(model: FNNModel, dtype: np.dtype):
    hidden_layer = CompiledDense(model.hidden_layer, dtype)
    output = CompiledDense(model.output, dtype)

    def forward(cf: np.ndarray) -> np.ndarray:
        return output(hidden_layer(np.asarray(cf, dtype=dtype))).reshape(-1)

    return forward


@register_compiler(RFNNModel)
def _compile_rfnn(model: RFNNModel, dtype: np.dtype):
    fnn = CompiledDense(model.fnn, dtype)
    encoder = compile_plan(model.encoder, dtype)
    combine = CompiledDense(model.combine, dtype)
    output = CompiledDense(model.output, dtype)
    n_features, n_lags = model.n_features, model.n_lags

    def forward(cf: np.ndarray, history: np.ndarray) -> np.ndarray:
        cf = np.asarray(cf, dtype=dtype)
        history = np.asarray(history, dtype=dtype)
        if cf.shape[1] != n_features:
            raise ValueError(f"expected {n_features} contextual features, got {cf.shape[1]}")
        if history.shape[1] != n_lags:
            raise ValueError(f"expected history window of {n_lags}, got {history.shape[1]}")
        v_s = np.concatenate([encoder(history[:, :, None]), fnn(cf)], axis=1)
        return output(combine(v_s)).reshape(-1)

    return forward


class _ScaledNNRegressor(Estimator):
    """Shared fit/predict plumbing: standardize X (and history) and y."""

    def __init__(self, lr: float, batch_size: int, max_epochs: int, patience: int, seed: int):
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.seed = seed
        self.model: Module | None = None
        self.history_: TrainingHistory | None = None

    def _build_model(self, n_features: int, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def _scale(self, X, history):
        X = self._x_scaler.transform(np.asarray(X, dtype=np.float64))
        if history is None:
            return {"cf": X}
        history = (np.asarray(history, dtype=np.float64) - self._y_mean) / self._y_std
        return {"cf": X, "history": history}

    def _fit(self, X, history, y, val) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._x_scaler = StandardScaler().fit(X)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        self.model = self._build_model(X.shape[1], rng)
        inputs = self._scale(X, history)
        targets = (y - self._y_mean) / self._y_std

        val_inputs = val_targets = None
        early_stopping = None
        if val is not None:
            val_X, val_history, val_y = val
            val_inputs = self._scale(val_X, val_history)
            val_targets = (np.asarray(val_y, dtype=np.float64) - self._y_mean) / self._y_std
            early_stopping = EarlyStopping(patience=self.patience)

        trainer = Trainer(
            self.model,
            loss="mse",
            lr=self.lr,
            batch_size=self.batch_size,
            max_epochs=self.max_epochs,
            early_stopping=early_stopping,
            rng=rng,
        )
        self.history_ = trainer.fit(inputs, targets, val_inputs, val_targets)
        self._trainer = trainer
        self._fitted = True

    def _predict(self, X, history) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        scaled = self._trainer.predict(self._scale(X, history))
        return scaled * self._y_std + self._y_mean


class FNNRegressor(_ScaledNNRegressor):
    """The FNN baseline: contextual features only, no RU history."""

    def __init__(
        self,
        hidden: int = 128,
        dropout: float = 0.0,
        lr: float = 0.003,
        batch_size: int = 128,
        max_epochs: int = 80,
        patience: int = 5,
        seed: int = 0,
    ):
        super().__init__(lr, batch_size, max_epochs, patience, seed)
        self.hidden = hidden
        self.dropout = dropout

    def _build_model(self, n_features: int, rng: np.random.Generator) -> Module:
        return FNNModel(n_features, hidden=self.hidden, dropout=self.dropout, rng=rng)

    def fit(self, X, y, val: tuple | None = None) -> "FNNRegressor":
        """``val`` is an optional (X_val, y_val) pair for early stopping."""
        val3 = (val[0], None, val[1]) if val is not None else None
        self._fit(X, None, y, val3)
        return self

    def predict(self, X) -> np.ndarray:
        return self._predict(X, None)


class RFNNRegressor(_ScaledNNRegressor):
    """RFNN / RFNN_all: GRU + FNN without embeddings.

    Fit it on one environment's data for RFNN, or on pooled data from all
    environments for RFNN_all.
    """

    def __init__(
        self,
        n_lags: int = 2,
        fnn_hidden: int = 64,
        gru_hidden: int = 16,
        dense_dim: int = 40,
        dropout: float = 0.1,
        encoder: str = "gru",
        lr: float = 0.003,
        batch_size: int = 128,
        max_epochs: int = 80,
        patience: int = 5,
        seed: int = 0,
    ):
        super().__init__(lr, batch_size, max_epochs, patience, seed)
        self.n_lags = n_lags
        self.fnn_hidden = fnn_hidden
        self.gru_hidden = gru_hidden
        self.dense_dim = dense_dim
        self.dropout = dropout
        validate_encoder_name(encoder)
        self.encoder = encoder

    def _build_model(self, n_features: int, rng: np.random.Generator) -> Module:
        return RFNNModel(
            n_features,
            n_lags=self.n_lags,
            fnn_hidden=self.fnn_hidden,
            gru_hidden=self.gru_hidden,
            dense_dim=self.dense_dim,
            dropout=self.dropout,
            encoder=self.encoder,
            rng=rng,
        )

    def fit(self, X, history, y, val: tuple | None = None) -> "RFNNRegressor":
        """``val`` is an optional (X_val, history_val, y_val) triple."""
        if np.asarray(history).shape[1] != self.n_lags:
            raise ValueError(f"history window must have {self.n_lags} columns")
        self._fit(X, history, y, val)
        return self

    def predict(self, X, history) -> np.ndarray:
        return self._predict(X, history)
