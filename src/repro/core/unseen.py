"""Testing previously unseen environments by reusing embeddings (paper §4.3).

The §4.3 protocol: take the focus test executions, *blind out* all history
from their chains (so their exact environments never appear in training),
train Env2Vec on the remaining corpus, and detect anomalies on the blinded
current builds using self-calibrated error distributions. The unseen
environment's embedding is composed by mix-and-matching the per-field
embeddings learned from other chains (Figure 5) — possible exactly because
each EM field has its own lookup table.

§6 caveat, also modelled here: this only works when the unseen
environment's individual EM *values* are covered in training ("unseen
environments ... refer to those can be constructed by known environment
embeddings"); a brand-new testbed falls back to the unknown row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.chains import TestExecution
from ..data.environment import EM_FIELDS, Environment
from ..data.telecom import TelecomDataset
from .embeddings import EnvironmentVocabulary

__all__ = ["BlindedSplit", "blind_chains", "field_coverage", "composable"]


@dataclass
class BlindedSplit:
    """Training pool with some chains fully removed, plus their held-out currents."""

    training: list[tuple[Environment, np.ndarray, np.ndarray]]
    held_out: list[TestExecution]
    blinded_keys: list[tuple[str, str, str]]


def blind_chains(dataset: TelecomDataset, chain_indices: list[int]) -> BlindedSplit:
    """Remove every execution of the given chains from the training pool.

    "we reuse the 11 test executions ... but blind out their available
    history of time series data to treat those as unseen environments. We
    use the rest of the data which does not contain any historical time
    series associated with each target test execution for training."
    """
    index_set = set(chain_indices)
    for index in index_set:
        if not 0 <= index < dataset.n_chains:
            raise IndexError(f"chain index {index} out of range [0, {dataset.n_chains})")
    training: list[tuple[Environment, np.ndarray, np.ndarray]] = []
    held_out: list[TestExecution] = []
    blinded_keys: list[tuple[str, str, str]] = []
    for i, chain in enumerate(dataset.chains):
        if i in index_set:
            held_out.append(chain.current)
            blinded_keys.append(chain.key)
            continue
        for execution in chain.history:
            training.append((execution.environment, execution.features, execution.cpu))
    return BlindedSplit(training=training, held_out=held_out, blinded_keys=blinded_keys)


def field_coverage(
    environment: Environment, training_environments: list[Environment]
) -> dict[str, int]:
    """How many training environments share each EM field value.

    This is the coverage statistic of Table 7: the under-performing case
    had only 17 training examples covering its testbed.
    """
    counts = {}
    for field in EM_FIELDS:
        value = getattr(environment, field)
        counts[field] = sum(1 for env in training_environments if getattr(env, field) == value)
    return counts


def composable(environment: Environment, vocabulary: EnvironmentVocabulary) -> bool:
    """Whether the unseen environment can be built from known embeddings.

    True when every EM field value was seen in training — the §6 condition
    for the mix-and-match composition of Figure 5 to be meaningful. (The
    model still *runs* otherwise, via unknown rows, but §6 warns that e.g.
    a brand-new testbed cannot be characterized.)
    """
    return all(vocabulary.is_known(environment).values())
