"""The Env2Vec deep-learning architecture (paper §3.1, §3.2, Appendix A).

Three input branches feed a combination layer:

- an **FNN** with one sigmoid hidden layer over the contextual features
  ``a_t`` produces ``v_fs``;
- a **sequence encoder** over the RU-history window
  ``{y_{p-n}, ..., y_{p-1}}`` produces ``v_ts`` — the paper's GRU (ReLU
  candidate activation, Appendix A) by default, or any variant from the
  :mod:`repro.nn.encoders` registry via ``encoder="lstm"``,
  ``"stacked"``, ``"bidirectional"``, ``"attention"``, ...;
- per-EM-field **embedding lookup tables** produce the concatenated
  environment embedding ``C = [ec^1, ..., ec^k]`` (eq. 1).

``v_s = [v_ts, v_fs]`` passes through a dense layer to ``v_d`` with
``dim(v_d) == dim(C)``, and the prediction is the sum of the Hadamard
product (eq. 2): ``y'_p = Σ v_d ⊙ C``. §3.2 notes two alternatives with
similar results — a bilinear form ``v_d · R · C`` and an MLP over
``[v_d, C]`` — both implemented here as ``head`` options and exercised by
the head ablation benchmark.

:class:`Env2VecModel` is the raw autograd module; :class:`Env2VecRegressor`
is the user-facing estimator handling vocabulary fitting, feature/target
standardization, training with early stopping, and inverse-scaled
prediction.
"""

from __future__ import annotations


import numpy as np

from ..data.environment import EM_FIELDS, Environment
from ..ml.base import Estimator
from ..ml.preprocessing import StandardScaler
from ..obs import active_profiler, get_observability
from ..nn import init as initializers
from ..nn import ops
from ..nn.encoders import create_encoder, resolve_encoder_name
from ..nn.inference import (
    CompiledDense,
    EmbeddingRowCache,
    InferenceModel,
    compile_module,
    compile_plan,
    register_compiler,
    snapshot,
)
from ..nn.layers import Dense, Dropout, Module
from ..nn.tensor import Tensor, no_grad
from ..nn.training import EarlyStopping, Trainer, TrainingHistory
from .embeddings import EnvironmentEmbeddings, EnvironmentVocabulary

__all__ = ["Env2VecModel", "Env2VecRegressor", "PREDICTION_HEADS"]

PREDICTION_HEADS = ("hadamard", "bilinear", "mlp")

_OBS = get_observability()
_H_COMPILE = _OBS.histogram(
    "repro_model_compile_seconds",
    "Time for Env2VecRegressor.compile (snapshot + plan build).",
)
_M_PREDICTIONS = _OBS.counter(
    "repro_predictions_total", "Individual RU predictions served by Env2VecRegressor."
)


class Env2VecModel(Module):
    """FNN + sequence encoder + environment embeddings with a Hadamard head."""

    def __init__(
        self,
        n_features: int,
        n_lags: int,
        vocabulary: EnvironmentVocabulary,
        embedding_dim: int = 10,
        fnn_hidden: int = 64,
        gru_hidden: int = 16,
        dropout: float = 0.1,
        head: str = "hadamard",
        unknown_dropout: float = 0.0,
        encoder: str | None = None,
        use_attention: bool | None = None,
        recurrent_unit: str | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if head not in PREDICTION_HEADS:
            raise ValueError(f"unknown head {head!r}; choose from {PREDICTION_HEADS}")
        encoder_name = resolve_encoder_name(encoder, recurrent_unit, use_attention)
        if n_lags < 1:
            raise ValueError("n_lags must be >= 1")
        rng = initializers.ensure_rng(rng)
        self.n_features = n_features
        self.n_lags = n_lags
        self.head = head
        self.encoder_name = encoder_name
        # FNN branch: one sigmoid hidden layer (Appendix A).
        self.fnn = Dense(n_features, fnn_hidden, activation="sigmoid", rng=rng)
        self.fnn_dropout = Dropout(dropout, rng=rng)
        # Time-series branch over the univariate RU history: any registered
        # SequenceEncoder (the paper's GRU with ReLU candidate, Appendix A,
        # by default; the §6 attention extension keeps all hidden states and
        # pools them by additive attention).
        self.encoder = create_encoder(encoder_name, 1, gru_hidden, rng=rng)
        # Embedding branch (with <unk>-row training via unknown-dropout).
        self.embeddings = EnvironmentEmbeddings(
            vocabulary, embedding_dim, unknown_dropout=unknown_dropout, rng=rng
        )
        c_dim = self.embeddings.output_dim
        # Dense combination layer: v_s -> v_d with dim(v_d) == dim(C).
        self.combine = Dense(fnn_hidden + self.encoder.output_dim, c_dim, rng=rng)
        if head == "bilinear":
            from ..nn.layers import Parameter

            self.bilinear = Parameter(
                initializers.glorot_uniform((c_dim, c_dim), rng), name="bilinear"
            )
        elif head == "mlp":
            self.head_hidden = Dense(2 * c_dim, c_dim, activation="relu", rng=rng)
            self.head_out = Dense(c_dim, 1, rng=rng)

    @property
    def use_attention(self) -> bool:
        """Deprecated alias: whether the encoder pools with attention."""
        return "attention" in self.encoder_name

    @property
    def recurrent_unit(self) -> str:
        """Deprecated alias: the recurrent-cell family behind the encoder."""
        return "lstm" if self.encoder_name.startswith("lstm") else "gru"

    def forward(self, cf: np.ndarray, history: np.ndarray, env: np.ndarray) -> Tensor:
        """Predict ``y'_p`` for a batch.

        ``cf``: (batch, n_features) contextual features;
        ``history``: (batch, n_lags) previous RU values, oldest first;
        ``env``: (batch, n_fields) integer EM ids.
        """
        cf = np.asarray(cf, dtype=np.float64)
        history = np.asarray(history, dtype=np.float64)
        if cf.shape[1] != self.n_features:
            raise ValueError(f"expected {self.n_features} contextual features, got {cf.shape[1]}")
        if history.shape[1] != self.n_lags:
            raise ValueError(f"expected history window of {self.n_lags}, got {history.shape[1]}")
        v_fs = self.fnn_dropout(self.fnn(Tensor(cf)))
        v_ts = self.encoder(Tensor(history[:, :, None]))
        v_s = Tensor.concat([v_ts, v_fs], axis=1)
        v_d = self.combine(v_s)
        c = self.embeddings(env)
        if self.head == "hadamard":
            return (v_d * c).sum(axis=1)
        if self.head == "bilinear":
            return ((v_d @ self.bilinear) * c).sum(axis=1)
        merged = Tensor.concat([v_d, c], axis=1)
        return self.head_out(self.head_hidden(merged)).reshape(-1)


@register_compiler(Env2VecModel)
def _compile_env2vec(model: Env2VecModel, dtype: np.dtype):
    """Compile rule for the full Env2Vec architecture.

    Mirrors :meth:`Env2VecModel.forward` in eval mode: dropout and
    unknown-dropout are elided, the time-series branch embeds the
    encoder's own registered plan (fused sequence kernels), and the
    embedding branch is served from an LRU :class:`EmbeddingRowCache`
    keyed by the env-id tuple.
    """
    fnn = CompiledDense(model.fnn, dtype)
    encoder = compile_plan(model.encoder, dtype)
    combine = CompiledDense(model.combine, dtype)
    env_cache = EmbeddingRowCache(model.embeddings.table_arrays(), dtype)
    head = model.head
    if head == "bilinear":
        bilinear = snapshot(model.bilinear.data, dtype)
    elif head == "mlp":
        head_hidden = CompiledDense(model.head_hidden, dtype)
        head_out = CompiledDense(model.head_out, dtype)
    n_features, n_lags = model.n_features, model.n_lags

    def forward(cf: np.ndarray, history: np.ndarray, env: np.ndarray) -> np.ndarray:
        cf = np.asarray(cf, dtype=dtype)
        history = np.asarray(history, dtype=dtype)
        if cf.shape[1] != n_features:
            raise ValueError(f"expected {n_features} contextual features, got {cf.shape[1]}")
        if history.shape[1] != n_lags:
            raise ValueError(f"expected history window of {n_lags}, got {history.shape[1]}")
        prof = active_profiler()
        if prof is not None:
            return _profiled_forward(prof, cf, history, env)
        v_fs = fnn(cf)
        v_ts = encoder(history[:, :, None])
        v_d = combine(np.concatenate([v_ts, v_fs], axis=1))
        c = env_cache.rows(env)
        if head == "hadamard":
            return ops.hadamard_head(v_d, c)
        if head == "bilinear":
            return ops.bilinear_head(v_d, bilinear, c)[0]
        return head_out(head_hidden(np.concatenate([v_d, c], axis=1))).reshape(-1)

    def _profiled_forward(prof, cf: np.ndarray, history: np.ndarray, env: np.ndarray) -> np.ndarray:
        # Same ops, same order as the fast path — only timing added.
        with prof.op("fnn"):
            v_fs = fnn(cf)
        with prof.op("encoder"):
            v_ts = encoder(history[:, :, None])
        with prof.op("combine"):
            v_d = combine(np.concatenate([v_ts, v_fs], axis=1))
        with prof.op("env_rows"):
            c = env_cache.rows(env)
        with prof.op("head"):
            if head == "hadamard":
                return ops.hadamard_head(v_d, c)
            if head == "bilinear":
                return ops.bilinear_head(v_d, bilinear, c)[0]
            return head_out(head_hidden(np.concatenate([v_d, c], axis=1))).reshape(-1)

    forward.env_cache = env_cache
    return forward


class Env2VecRegressor(Estimator):
    """High-level estimator: vocabulary + scaling + training + prediction.

    ``fit`` consumes per-sample environments plus aligned contextual
    features, RU-history windows, and targets (as produced by
    :func:`repro.data.windows.build_windows_multi`). The time-series
    branch is selected by ``encoder`` (any name from
    :func:`repro.nn.available_encoders`); ``use_attention`` and
    ``recurrent_unit`` survive as deprecated aliases and normalize into
    ``encoder`` at construction.
    """

    def __init__(
        self,
        n_lags: int = 3,
        embedding_dim: int = 10,
        fnn_hidden: int = 64,
        gru_hidden: int = 16,
        dropout: float = 0.1,
        head: str = "hadamard",
        unknown_dropout: float = 0.05,
        encoder: str | None = None,
        use_attention: bool | None = None,
        recurrent_unit: str | None = None,
        em_fields: tuple[str, ...] = EM_FIELDS,
        lr: float = 0.005,
        batch_size: int = 256,
        max_epochs: int = 60,
        patience: int = 8,
        seed: int = 0,
    ):
        self.n_lags = n_lags
        self.em_fields = tuple(em_fields)
        self.embedding_dim = embedding_dim
        self.fnn_hidden = fnn_hidden
        self.gru_hidden = gru_hidden
        self.dropout = dropout
        self.head = head
        self.unknown_dropout = unknown_dropout
        # Normalize the deprecated aliases away immediately so get_params/
        # clone round-trip through the canonical encoder name alone.
        self.encoder = resolve_encoder_name(encoder, recurrent_unit, use_attention)
        self.use_attention = None
        self.recurrent_unit = None
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.seed = seed
        self.model: Env2VecModel | None = None
        self.vocabulary: EnvironmentVocabulary | None = None
        self.history_: TrainingHistory | None = None
        self._engine: InferenceModel | None = None

    # -- internals --------------------------------------------------------
    def _scale_inputs(self, X, history):
        X = self._x_scaler.transform(np.asarray(X, dtype=np.float64))
        history = (np.asarray(history, dtype=np.float64) - self._y_mean) / self._y_std
        return X, history

    def _batch(self, environments, X, history):
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        if not (len(environments) == len(X) == len(history)):
            raise ValueError("environments, X and history must be aligned")
        X, history = self._scale_inputs(X, history)
        env_ids = self.vocabulary.encode(list(environments))
        return {"cf": X, "history": history, "env": env_ids}

    # -- estimator API ------------------------------------------------------
    def fit(
        self,
        environments: list[Environment],
        X: np.ndarray,
        history: np.ndarray,
        y: np.ndarray,
        val: tuple[list[Environment], np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> "Env2VecRegressor":
        X = np.asarray(X, dtype=np.float64)
        history = np.asarray(history, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if not (len(environments) == len(X) == len(history) == len(y)):
            raise ValueError("environments, X, history and y must be aligned")
        if history.shape[1] != self.n_lags:
            raise ValueError(f"history window must have {self.n_lags} columns; got {history.shape[1]}")

        rng = np.random.default_rng(self.seed)
        self.vocabulary = EnvironmentVocabulary(fields=self.em_fields).fit(list(environments))
        self._x_scaler = StandardScaler().fit(X)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0

        self.model = Env2VecModel(
            n_features=X.shape[1],
            n_lags=self.n_lags,
            vocabulary=self.vocabulary,
            embedding_dim=self.embedding_dim,
            fnn_hidden=self.fnn_hidden,
            gru_hidden=self.gru_hidden,
            dropout=self.dropout,
            head=self.head,
            unknown_dropout=self.unknown_dropout,
            encoder=self.encoder,
            rng=rng,
        )
        inputs = self._batch(environments, X, history)
        targets = (y - self._y_mean) / self._y_std

        val_inputs = val_targets = None
        early_stopping = None
        if val is not None:
            val_envs, val_X, val_history, val_y = val
            val_inputs = self._batch(list(val_envs), val_X, val_history)
            val_targets = (np.asarray(val_y, dtype=np.float64) - self._y_mean) / self._y_std
            early_stopping = EarlyStopping(patience=self.patience)

        trainer = Trainer(
            self.model,
            loss="mse",
            lr=self.lr,
            batch_size=self.batch_size,
            max_epochs=self.max_epochs,
            early_stopping=early_stopping,
            rng=rng,
        )
        self.history_ = trainer.fit(inputs, targets, val_inputs, val_targets)
        self._engine = None  # weights changed; any compiled engine is stale
        self._fitted = True
        return self

    def compile(self, dtype=np.float64) -> InferenceModel:
        """Snapshot the fitted model into a tape-free inference engine.

        The engine is cached and reused by :meth:`predict` until the next
        ``fit``/``fine_tune`` invalidates it. Pass ``np.float32`` to halve
        the weight footprint (at float32 accuracy).
        """
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        with _H_COMPILE.time():
            self.model.eval()
            self._engine = compile_module(self.model, dtype=dtype)
        return self._engine

    def _ensure_engine(self) -> InferenceModel:
        if self._engine is None:
            self.compile()
        return self._engine

    def ensure_compiled(self, dtype=None) -> InferenceModel:
        """Compile on first use, else return the cached engine.

        The parallel campaign executor calls this once before fanning
        out so worker threads never race the lazy first-predict compile.
        With ``dtype`` set, the cached engine is recompiled if it was
        built at a different precision (serving callers pick float32 for
        batch throughput; float64 remains the default everywhere).
        """
        if dtype is not None and (self._engine is None or self._engine.dtype != np.dtype(dtype)):
            return self.compile(dtype=dtype)
        return self._ensure_engine()

    def predict(
        self,
        environments: list[Environment],
        X: np.ndarray,
        history: np.ndarray,
        compiled: bool = True,
    ) -> np.ndarray:
        """Inverse-scaled predictions for aligned environments/features/windows.

        By default this runs the compiled tape-free engine (compiling on
        first use). ``compiled=False`` keeps the autograd forward under
        ``no_grad`` — slower, retained as the parity/benchmark baseline.
        """
        batch = self._batch(environments, X, history)
        if compiled:
            scaled = self._ensure_engine().predict(batch, batch_size=self.batch_size)
        else:
            self.model.eval()
            outputs = []
            with no_grad():
                for start in range(0, len(X), self.batch_size):
                    chunk = {k: v[start : start + self.batch_size] for k, v in batch.items()}
                    outputs.append(self.model(**chunk).numpy())
            scaled = np.concatenate(outputs, axis=0)
        _M_PREDICTIONS.inc(len(scaled))
        return scaled * self._y_std + self._y_mean

    def embed_environments(self, environments: list[Environment]) -> np.ndarray:
        """Concatenated learned embeddings (for Figure 6-style analysis)."""
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.model.embeddings.embed_environments(list(environments))

    def fine_tune(
        self,
        environments: list[Environment],
        X: np.ndarray,
        history: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        lr: float | None = None,
        adapt_embeddings_only: bool = True,
    ) -> "Env2VecRegressor":
        """Incrementally retrain on new data without starting over.

        §4.3 closes with: the reduced detection in unseen environments "is
        resolved by retraining Env2Vec incrementally with the new data from
        the environment." This grows the vocabulary and embedding tables
        for any new EM values (new rows start at the trained ``<unk>``
        embedding) and continues optimization on the new examples with a
        reduced learning rate. Feature/target scaling is kept from the
        original fit so old and new data remain comparable.

        With ``adapt_embeddings_only`` (the default) only the embedding
        tables receive updates: the FNN/GRU backbone already models the
        shared physics, and freezing it prevents a narrow batch of
        new-environment data from catastrophically shifting predictions for
        every other environment. Pass ``False`` for a full-parameter update
        (then the data should include replay examples from old
        environments).
        """
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        X = np.asarray(X, dtype=np.float64)
        history = np.asarray(history, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if not (len(environments) == len(X) == len(history) == len(y)):
            raise ValueError("environments, X, history and y must be aligned")

        added = self.vocabulary.extend(list(environments))
        self.model.embeddings.grow_tables(added)

        inputs = self._batch(environments, X, history)
        targets = (y - self._y_mean) / self._y_std
        if adapt_embeddings_only:
            parameters = list(self.model.embeddings.parameters())
        else:
            parameters = list(self.model.parameters())
        from ..nn.optim import Adam

        trainer = Trainer(
            self.model,
            loss="mse",
            optimizer=Adam(parameters, lr=lr if lr is not None else self.lr * 0.3),
            batch_size=min(self.batch_size, max(1, len(y))),
            max_epochs=epochs,
            rng=np.random.default_rng(self.seed + 1),
        )
        trainer.fit(inputs, targets)
        self._engine = None  # tables grew and weights moved; recompile lazily
        return self

    def coverage(self, environment: Environment) -> dict[str, bool]:
        """Which EM fields of an environment are known to the vocabulary."""
        if self.vocabulary is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.vocabulary.is_known(environment)

    # -- serialization (used by the workflow's model store) ----------------
    def to_bytes(self) -> bytes:
        """Serialize weights + vocabulary + scaling into one npz blob.

        §6: the full artifact ("a file containing the environment
        embeddings and the DL model") is what the training pipeline
        publishes over HTTP.
        """
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        from ..nn.serialize import save_model_bytes

        config = {
            "hyper": {
                "n_lags": self.n_lags,
                "embedding_dim": self.embedding_dim,
                "fnn_hidden": self.fnn_hidden,
                "gru_hidden": self.gru_hidden,
                "dropout": self.dropout,
                "head": self.head,
                "unknown_dropout": self.unknown_dropout,
                "encoder": self.encoder,
            },
            "n_features": self.model.n_features,
            "vocabulary": self.vocabulary.to_config(),
            "x_mean": self._x_scaler.mean_.tolist(),
            "x_scale": self._x_scaler.scale_.tolist(),
            "y_mean": self._y_mean,
            "y_std": self._y_std,
        }
        return save_model_bytes(self.model, config)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Env2VecRegressor":
        """Reconstruct a fitted regressor from :meth:`to_bytes` output.

        Construction runs under :func:`repro.nn.init.deferred_init`: every
        parameter is about to be overwritten by ``load_state_dict``, so the
        usual Glorot/orthogonal draws (a QR decomposition per recurrent
        kernel) would be thrown away. The deserialized regressor predicts
        through the compiled inference path directly — no Trainer needed.
        """
        from ..nn.serialize import load_model_bytes

        state, config = load_model_bytes(blob)
        hyper = config["hyper"]
        # Legacy blobs (pre-registry) stored the alias pair instead of the
        # canonical encoder name; resolve through the same alias table.
        encoder_name = hyper.get("encoder") or resolve_encoder_name(
            None, hyper.get("recurrent_unit"), hyper.get("use_attention")
        )
        regressor = cls(
            n_lags=hyper["n_lags"],
            embedding_dim=hyper["embedding_dim"],
            fnn_hidden=hyper["fnn_hidden"],
            gru_hidden=hyper["gru_hidden"],
            dropout=hyper["dropout"],
            head=hyper["head"],
            unknown_dropout=hyper.get("unknown_dropout", 0.0),
            encoder=encoder_name,
        )
        regressor.vocabulary = EnvironmentVocabulary.from_config(config["vocabulary"])
        with initializers.deferred_init():
            regressor.model = Env2VecModel(
                n_features=config["n_features"],
                n_lags=hyper["n_lags"],
                vocabulary=regressor.vocabulary,
                embedding_dim=hyper["embedding_dim"],
                fnn_hidden=hyper["fnn_hidden"],
                gru_hidden=hyper["gru_hidden"],
                dropout=hyper["dropout"],
                head=hyper["head"],
                unknown_dropout=hyper.get("unknown_dropout", 0.0),
                encoder=encoder_name,
            )
        regressor.model.load_state_dict(state)
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(config["x_mean"], dtype=np.float64)
        scaler.scale_ = np.asarray(config["x_scale"], dtype=np.float64)
        regressor._x_scaler = scaler
        regressor._y_mean = float(config["y_mean"])
        regressor._y_std = float(config["y_std"])
        regressor._fitted = True
        return regressor
