"""Error-distribution calibration (the §3.2 caveat, made actionable).

The paper's anomaly detector "assumes that the prediction errors will
follow a Gaussian distribution, and while this may be adequate in many
cases, it is not necessarily always true. Thus, a more rigorous modelling
of the prediction error for a particular VNF may be required in such
cases." This module supplies that rigour:

- :func:`calibration_report` quantifies how Gaussian a chain's error
  distribution actually is (normality test, skew/kurtosis, and the
  *empirical* tail mass beyond each γ vs the Gaussian prediction);
- :class:`QuantileErrorModel` is the distribution-free alternative: flag a
  timestep when its error falls outside the historical errors' central
  ``1 - 2q`` quantile band — the analogue of γ·σ without the Gaussian
  assumption. It plugs into :class:`ContextualAnomalyDetector` wherever a
  :class:`GaussianErrorModel` is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .anomaly import GaussianErrorModel

__all__ = ["QuantileErrorModel", "CalibrationReport", "calibration_report", "gamma_to_quantile"]


def gamma_to_quantile(gamma: float) -> float:
    """The per-side tail mass a Gaussian puts beyond ±γσ (e.g. γ=2 → 2.28%)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return float(stats.norm.sf(gamma))


class QuantileErrorModel:
    """Distribution-free error model: thresholds from empirical quantiles.

    Duck-types :class:`GaussianErrorModel`'s detection interface
    (``is_anomalous(errors, gamma)``): γ is translated to the equivalent
    Gaussian tail mass, and the thresholds are the historical errors'
    empirical quantiles at that mass. On truly Gaussian errors the two
    models agree; on heavy-tailed errors this one stops over-flagging.
    """

    def __init__(self, errors: np.ndarray):
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size < 10:
            raise ValueError("need at least 10 error samples for quantile calibration")
        if not np.isfinite(errors).all():
            raise ValueError("errors contain NaN or infinite values")
        self._sorted = np.sort(errors)
        self.mu = float(np.median(errors))

    @classmethod
    def fit(cls, errors: np.ndarray) -> "QuantileErrorModel":
        return cls(errors)

    def bounds(self, gamma: float) -> tuple[float, float]:
        """The (lower, upper) thresholds equivalent to ±γσ."""
        tail = gamma_to_quantile(gamma)
        lower = float(np.quantile(self._sorted, tail))
        upper = float(np.quantile(self._sorted, 1.0 - tail))
        return lower, upper

    def zscore(self, errors: np.ndarray) -> np.ndarray:
        """Robust z-score (median / MAD), for reporting parity."""
        mad = float(np.median(np.abs(self._sorted - self.mu))) or 1e-9
        return (np.asarray(errors, dtype=np.float64) - self.mu) / (1.4826 * mad)

    def is_anomalous(self, errors: np.ndarray, gamma: float) -> np.ndarray:
        lower, upper = self.bounds(gamma)
        errors = np.asarray(errors, dtype=np.float64)
        return (errors < lower) | (errors > upper)


@dataclass
class CalibrationReport:
    """How well the Gaussian assumption holds for one error sample."""

    n_samples: int
    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    normality_p_value: float
    # Per gamma: (empirical two-sided tail mass, Gaussian-predicted mass)
    tail_mass: dict[float, tuple[float, float]]

    @property
    def looks_gaussian(self) -> bool:
        """Normality not rejected at the paper's 0.05 significance."""
        return self.normality_p_value >= 0.05

    def worst_tail_inflation(self) -> float:
        """max over γ of empirical / predicted tail mass (>1 = heavy tails)."""
        ratios = [
            empirical / predicted
            for empirical, predicted in self.tail_mass.values()
            if predicted > 0
        ]
        return max(ratios) if ratios else 1.0

    def table(self) -> str:
        lines = [
            f"Error calibration over {self.n_samples} samples: "
            f"mean={self.mean:+.3f} std={self.std:.3f} skew={self.skewness:+.2f} "
            f"excess kurtosis={self.excess_kurtosis:+.2f}",
            f"normality test p={self.normality_p_value:.4f} "
            f"({'Gaussian OK' if self.looks_gaussian else 'NOT Gaussian'})",
            f"{'γ':>4} {'empirical tail':>15} {'Gaussian tail':>14}",
        ]
        for gamma, (empirical, predicted) in sorted(self.tail_mass.items()):
            lines.append(f"{gamma:4.1f} {empirical:15.4f} {predicted:14.4f}")
        return "\n".join(lines)


def calibration_report(
    errors: np.ndarray, gammas: tuple[float, ...] = (1.0, 2.0, 3.0)
) -> CalibrationReport:
    """Assess the Gaussian-error assumption on a sample of prediction errors."""
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size < 20:
        raise ValueError("need at least 20 error samples for a calibration report")
    if not np.isfinite(errors).all():
        raise ValueError("errors contain NaN or infinite values")
    gaussian = GaussianErrorModel.fit(errors)
    # Normality: D'Agostino-Pearson (robust for n >= 20).
    _, p_value = stats.normaltest(errors)
    tail_mass = {}
    for gamma in gammas:
        flagged = gaussian.is_anomalous(errors, gamma)
        tail_mass[gamma] = (float(flagged.mean()), 2.0 * gamma_to_quantile(gamma))
    return CalibrationReport(
        n_samples=int(errors.size),
        mean=float(errors.mean()),
        std=float(errors.std()),
        skewness=float(stats.skew(errors)),
        excess_kurtosis=float(stats.kurtosis(errors)),
        normality_p_value=float(p_value),
        tail_mass=tail_mass,
    )
