"""Env2Vec — accelerating VNF testing with deep learning (EuroSys 2020).

A full from-scratch reproduction of the paper's system:

- :mod:`repro.nn` — the deep-learning stack (autograd, Dense/GRU/Embedding,
  Adam, early stopping) standing in for Keras/TensorFlow.
- :mod:`repro.ml` — classical baselines (Ridge, random forest, SVR) and
  utilities (scalers, grid search, PCA) standing in for scikit-learn.
- :mod:`repro.htm` — a compact HTM implementation backing the HTM-AD
  baseline.
- :mod:`repro.data` — the EM schema, build chains, and synthetic KDN /
  telecom dataset generators with fault injection.
- :mod:`repro.core` — the Env2Vec model (FNN + GRU + environment
  embeddings, Hadamard head), the FNN/RFNN baselines, the contextual
  anomaly detector, and the unseen-environment protocol.
- :mod:`repro.workflow` — the Figure 2 testing workflow: TSDB, service
  discovery, collector, training/prediction pipelines, alarm and model
  stores.
- :mod:`repro.parallel` — the sharded campaign executor: read-only TSDB
  snapshot shards, worker pools, and the byte-identical parallel scorer.
- :mod:`repro.eval` — metrics and per-table/figure experiment drivers.

Quickstart::

    from repro.data import generate_telecom, TelecomConfig
    from repro.eval import train_env2vec_telecom, run_anomaly_table

    dataset = generate_telecom(TelecomConfig(n_chains=20, n_focus=4))
    model = train_env2vec_telecom(dataset)
    table5 = run_anomaly_table(dataset, model)
    print(table5.table("Performance problems detected"))
"""

from .core.anomaly import ContextualAnomalyDetector
from .core.model import Env2VecModel, Env2VecRegressor
from .data.environment import Environment
from .data.kdn import load_all_kdn, load_kdn
from .data.telecom import TelecomConfig, generate_telecom

__version__ = "1.0.0"

__all__ = [
    "Env2VecModel",
    "Env2VecRegressor",
    "ContextualAnomalyDetector",
    "Environment",
    "TelecomConfig",
    "generate_telecom",
    "load_kdn",
    "load_all_kdn",
    "__version__",
]
