"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning stack. The
paper implements Env2Vec with Keras/TensorFlow; neither is available here,
so we provide a compact tape-based autograd engine that supports everything
the Env2Vec architecture needs: dense layers, GRU recurrences, embedding
lookups with sparse gradients, dropout, concatenation, and the
sum-of-Hadamard-product prediction head.

The design follows the classic define-by-run model: every operation on a
:class:`Tensor` records a backward closure and its parent tensors; calling
:meth:`Tensor.backward` runs a topological sort of the recorded graph and
accumulates gradients into ``Tensor.grad`` for every tensor created with
``requires_grad=True``.

All gradients are validated against central finite differences in
``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "apply_op"]


class _GradMode(threading.local):
    """Per-thread graph-recording switch.

    Inference servers run predictions from worker threads; a module-level
    boolean would let one thread's ``no_grad`` block silently disable
    gradient recording in a concurrently training thread. Each thread
    starts with recording enabled (the class attribute default) and only
    ever mutates its own view.
    """

    enabled = True


_GRAD_MODE = _GradMode()


class no_grad:
    """Context manager that disables graph recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_MODE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_MODE.enabled


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional autograd tape entry.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` for numerically robust
        gradient checks.
    requires_grad:
        When true, :meth:`backward` accumulates this tensor's gradient in
        :attr:`grad`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a result tensor wired into the tape if grad is enabled."""
        needs = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if needs:
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} does not match tensor shape {self.data.shape}")

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf accumulation also happens for intermediate tensors the
            # user explicitly marked; keep gradients only at leaves to
            # bound memory.
            if not node._parents:
                node._accumulate(node_grad)
                continue
            _CURRENT_GRADS.append(grads)
            try:
                node._backward(node_grad)
            finally:
                _CURRENT_GRADS.pop()

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            _send(self, _unbroadcast(grad, self.shape))
            _send(other, _unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _send(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            _send(self, _unbroadcast(grad, self.shape))
            _send(other, _unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            _send(self, _unbroadcast(grad * other.data, self.shape))
            _send(other, _unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            _send(self, _unbroadcast(grad / other.data, self.shape))
            _send(other, _unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.ndim == 2 and other.ndim == 2:
                _send(self, grad @ other.data.T)
                _send(other, self.data.T @ grad)
            elif self.ndim == 1 and other.ndim == 2:
                _send(self, grad @ other.data.T)
                _send(other, np.outer(self.data, grad))
            elif self.ndim == 2 and other.ndim == 1:
                _send(self, np.outer(grad, other.data))
                _send(other, self.data.T @ grad)
            else:  # pragma: no cover - not used by the library
                raise NotImplementedError("matmul backward for >2-d operands")

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            _send(self, np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Non-linearities
    # ------------------------------------------------------------------
    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _send(self, grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            _send(self, grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _send(self, grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, index, grad)
            _send(self, full)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Structural operations used by the Env2Vec architecture
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenate tensors along ``axis``; gradients split back."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer: list = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                _send(tensor, grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                _send(tensor, np.squeeze(piece, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style row gather: ``out[i] = self[indices[i]]``.

        The backward pass scatter-adds into the table, giving the sparse
        gradient semantics embedding lookup tables rely on.
        """
        indices = np.asarray(indices, dtype=np.int64)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, indices, grad)
            _send(self, full)

        return Tensor._make(self.data[indices], (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout: active only while grad recording is enabled."""
        if rate <= 0.0 or not _GRAD_MODE.enabled:
            return self
        if rate >= 1.0:
            raise ValueError("dropout rate must be < 1")
        mask = (rng.random(self.shape) >= rate) / (1.0 - rate)

        def backward(grad: np.ndarray) -> None:
            _send(self, grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)


# A stack of gradient dictionaries used while a backward pass is running.
# ``_send`` routes a parent's gradient either into the active pass (so it is
# consumed when that parent is visited in topological order) or directly into
# ``Tensor.grad`` for leaves.
_CURRENT_GRADS: list[dict[int, np.ndarray]] = []


def _send(tensor: Tensor, grad: np.ndarray) -> None:
    if not tensor.requires_grad:
        return
    grads = _CURRENT_GRADS[-1]
    key = id(tensor)
    if key in grads:
        grads[key] = grads[key] + grad
    else:
        grads[key] = grad


def apply_op(
    parents: Sequence[Tensor],
    data: np.ndarray,
    backward_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]],
) -> Tensor:
    """Wire a fused numpy kernel into the tape as a single graph node.

    ``backward_fn`` receives the output gradient and must return one
    gradient per parent, aligned with ``parents`` (``None`` to skip a
    parent). This is how the :mod:`repro.nn.ops` kernels attach autograd:
    the layer runs the pure-numpy forward once, keeps the kernel's cache in
    the closure, and the whole layer becomes one tape node instead of a
    chain of elementary operations.
    """
    parents = tuple(p if isinstance(p, Tensor) else Tensor(p) for p in parents)

    def backward(grad: np.ndarray) -> None:
        for parent, parent_grad in zip(parents, backward_fn(grad)):
            if parent_grad is not None:
                _send(parent, parent_grad)

    return Tensor._make(data, parents, backward)
