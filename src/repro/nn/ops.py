"""Functional numpy kernels shared by the autograd layers and the inference engine.

This module is the *ops core* of the ``repro.nn`` stack: every forward
kernel is pure numpy — no :class:`~repro.nn.tensor.Tensor`, no tape — and
returns ``(output, cache)`` where ``cache`` holds exactly the intermediates
its matching ``*_backward`` kernel needs. Two consumers sit on top:

- the layer classes (:mod:`repro.nn.layers`, :mod:`repro.nn.gru`,
  :mod:`repro.nn.lstm`, :mod:`repro.nn.attention`) call a forward kernel
  once and register the matching backward kernel as a single tape node via
  :func:`repro.nn.tensor.apply_op` — differentiable training math;
- the tape-free engine (:mod:`repro.nn.inference`) calls the forward
  kernels (and the fused sequence runners at the bottom of this module)
  directly and throws the caches away — lean serving math.

Keeping both paths on one set of kernels is what makes the engine's
``assert_close`` parity guarantee cheap to maintain: there is one
implementation of the math, exercised by the finite-difference gradient
checks in ``tests/nn/``.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "activation",
    "activation_inplace",
    "activation_delta",
    "dense_forward",
    "dense_backward",
    "embedding_forward",
    "embedding_backward",
    "dropout_forward",
    "dropout_backward",
    "gru_step_forward",
    "gru_step_backward",
    "lstm_step_forward",
    "lstm_step_backward_h",
    "lstm_step_backward_c",
    "attention_forward",
    "attention_pool",
    "attention_backward",
    "hadamard_head",
    "hadamard_head_backward",
    "bilinear_head",
    "bilinear_head_backward",
    "fuse_gru_weights",
    "gru_sequence",
    "fuse_lstm_weights",
    "lstm_sequence",
    "ACTIVATION_NAMES",
]

ACTIVATION_NAMES = ("linear", "relu", "sigmoid", "tanh")


try:  # scipy's expit is a single C ufunc (no temporaries for exp/add/divide)
    from scipy.special import expit as _expit
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _expit = None


def _sigmoid(x: np.ndarray) -> np.ndarray:
    if _expit is not None:
        return _expit(x)
    return 1.0 / (1.0 + np.exp(-x))  # pragma: no cover - scipy is declared


if _expit is not None:

    def _sigmoid64_inplace(x: np.ndarray) -> np.ndarray:
        """In-place float64 sigmoid with the dtype dispatch pre-resolved.

        The exact sequence runners know their buffers are float64, so
        they skip :func:`_sigmoid_inplace`'s per-call dtype check and go
        straight to the ``expit`` ufunc (same bits, one call).
        """
        return _expit(x, x)

else:  # pragma: no cover - scipy is a declared dependency
    def _sigmoid64_inplace(x: np.ndarray) -> np.ndarray:
        return _sigmoid_inplace(x)


def _sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    """In-place sigmoid for the inference hot loops.

    ``float64`` stays on scipy's ``expit`` — the exact ufunc the training
    kernels use, which is what keeps compiled float64 outputs bitwise
    identical to the autograd math. ``float32`` composes numpy's
    SIMD-vectorized ``exp`` instead (``1 / (1 + exp(-x))``): on this
    path expit has no fast single-precision loop, and the composed form
    is several times faster; the difference is absorbed by the float32
    parity bound (:data:`repro.nn.inference.FLOAT32_ATOL`).
    """
    if _expit is not None and x.dtype == np.float64:
        return _expit(x, out=x)
    np.negative(x, out=x)
    # exp may overflow to inf for saturated gates; 1/(1+inf) is the
    # correct 0.0 tail, so the spurious warning is suppressed (expit
    # handles the same saturation silently).
    with np.errstate(over="ignore"):
        np.exp(x, out=x)
    x += 1.0
    return np.reciprocal(x, out=x)


def activation(name: str, pre: np.ndarray) -> np.ndarray:
    """Apply a named activation to pre-activation values."""
    if name == "linear":
        return pre
    if name == "relu":
        return np.maximum(pre, 0.0)
    if name == "sigmoid":
        return _sigmoid(pre)
    if name == "tanh":
        return np.tanh(pre)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


def activation_inplace(name: str, x: np.ndarray) -> np.ndarray:
    """Apply a named activation *in place* (inference paths only).

    The autograd kernels must keep their pre-activation arrays intact for
    the backward pass, so they use :func:`activation`; the compiled
    engine's buffers are throwaway, so it overwrites them instead of
    allocating. Elementwise results are bitwise identical to
    :func:`activation` for float64 (sigmoid routes through the same
    ``expit`` ufunc); float32 sigmoid takes the fast composed-``exp``
    path covered by the float32 parity bound.
    """
    if name == "linear":
        return x
    if name == "relu":
        return np.maximum(x, 0.0, out=x)
    if name == "sigmoid":
        return _sigmoid_inplace(x)
    if name == "tanh":
        return np.tanh(x, out=x)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


#: Hoisted in-place activation callables for the sequence runners: one
#: dict lookup per *call* instead of a string-compare chain per
#: *timestep*. ``linear`` maps to ``None`` (the loop skips the call).
#: float64 bits match :func:`activation_inplace` exactly — same ufuncs.
_INPLACE_ACT = {
    "linear": None,
    "relu": lambda x: np.maximum(x, 0.0, out=x),
    "sigmoid": _sigmoid_inplace,
    "tanh": lambda x: np.tanh(x, x),
}


def _resolve_act(act: str):
    try:
        return _INPLACE_ACT[act]
    except KeyError:
        raise ValueError(
            f"unknown activation {act!r}; choose from {ACTIVATION_NAMES}"
        ) from None


def _sigmoid_into(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """``dst = sigmoid(src)`` without touching ``src`` (low-precision path).

    Same composed-``exp`` form as :func:`_sigmoid_inplace`, but the first
    pass reads straight from ``src`` — one fewer pass than copy-then-
    activate when the source must stay intact. ``src`` and ``dst`` must
    not alias.
    """
    np.negative(src, out=dst)
    with np.errstate(over="ignore"):  # saturated gates: inf -> 0.0 tail
        np.exp(dst, out=dst)
    dst += 1.0
    return np.reciprocal(dst, out=dst)


def _activation_into(name: str, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """``dst = activation(src)`` without touching ``src`` (low-precision path)."""
    if name == "linear":
        return np.copyto(dst, src) or dst
    if name == "relu":
        return np.maximum(src, 0.0, out=dst)
    if name == "sigmoid":
        return _sigmoid_into(src, dst)
    if name == "tanh":
        return np.tanh(src, out=dst)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


def activation_delta(name: str, grad: np.ndarray, pre: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. ``pre`` given the gradient w.r.t. ``out``."""
    if name == "linear":
        return grad
    if name == "relu":
        return grad * (pre > 0)
    if name == "sigmoid":
        return grad * out * (1.0 - out)
    if name == "tanh":
        return grad * (1.0 - out * out)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


# ---------------------------------------------------------------------------
# Dense
# ---------------------------------------------------------------------------
def dense_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, act: str = "linear"
) -> tuple[np.ndarray, dict]:
    """``activation(x @ weight + bias)`` for 1-d or 2-d ``x``."""
    pre = x @ weight + bias
    out = activation(act, pre)
    return out, {"x": x, "weight": weight, "pre": pre, "out": out, "act": act}


def dense_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(d_x, d_weight, d_bias)``."""
    x, weight = cache["x"], cache["weight"]
    delta = activation_delta(cache["act"], grad, cache["pre"], cache["out"])
    if x.ndim == 1:
        return delta @ weight.T, np.outer(x, delta), delta
    return delta @ weight.T, x.T @ delta, delta.sum(axis=0)


# ---------------------------------------------------------------------------
# Embedding gather
# ---------------------------------------------------------------------------
def embedding_forward(table: np.ndarray, ids: np.ndarray) -> tuple[np.ndarray, dict]:
    """Row gather ``out[i] = table[ids[i]]``."""
    ids = np.asarray(ids, dtype=np.int64)
    return table[ids], {"shape": table.shape, "ids": ids}


def embedding_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray]:
    """Scatter-add the output gradient back into a dense table gradient."""
    full = np.zeros(cache["shape"], dtype=np.float64)
    np.add.at(full, cache["ids"], grad)
    return (full,)


# ---------------------------------------------------------------------------
# Dropout
# ---------------------------------------------------------------------------
def dropout_forward(
    x: np.ndarray, rate: float, rng: np.random.Generator
) -> tuple[np.ndarray, dict]:
    """Inverted dropout; the inference engine simply never calls this."""
    if not 0.0 < rate < 1.0:
        raise ValueError("dropout rate must be in (0, 1)")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * mask, {"mask": mask}


def dropout_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray]:
    return (grad * cache["mask"],)


# ---------------------------------------------------------------------------
# GRU step (Appendix A equations)
# ---------------------------------------------------------------------------
def gru_step_forward(
    y: np.ndarray,
    h_prev: np.ndarray,
    w_z: np.ndarray,
    u_z: np.ndarray,
    b_z: np.ndarray,
    w_r: np.ndarray,
    u_r: np.ndarray,
    b_r: np.ndarray,
    w_h: np.ndarray,
    u_h: np.ndarray,
    b_h: np.ndarray,
    act: str = "relu",
) -> tuple[np.ndarray, dict]:
    """One GRU timestep on ``(batch, input)`` / ``(batch, hidden)`` arrays."""
    z = _sigmoid(y @ w_z + h_prev @ u_z + b_z)
    r = _sigmoid(y @ w_r + h_prev @ u_r + b_r)
    hu = h_prev @ u_h
    pre = y @ w_h + r * hu + b_h
    cand = activation(act, pre)
    h = (1.0 - z) * cand + z * h_prev
    cache = {
        "y": y, "h_prev": h_prev, "z": z, "r": r, "hu": hu,
        "pre": pre, "cand": cand, "act": act,
        "w_z": w_z, "u_z": u_z, "w_r": w_r, "u_r": u_r, "w_h": w_h, "u_h": u_h,
    }
    return h, cache


def gru_step_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(y, h_prev, w_z, u_z, b_z, w_r, u_r, b_r, w_h, u_h, b_h)``."""
    y, h_prev = cache["y"], cache["h_prev"]
    z, r, hu, cand = cache["z"], cache["r"], cache["hu"], cache["cand"]

    d_z = grad * (h_prev - cand)
    d_cand = grad * (1.0 - z)
    d_h_prev = grad * z

    d_pre = activation_delta(cache["act"], d_cand, cache["pre"], cand)
    d_w_h = y.T @ d_pre
    d_b_h = d_pre.sum(axis=0)
    d_y = d_pre @ cache["w_h"].T
    d_r = d_pre * hu
    d_hu = d_pre * r
    d_u_h = h_prev.T @ d_hu
    d_h_prev = d_h_prev + d_hu @ cache["u_h"].T

    d_z_pre = d_z * z * (1.0 - z)
    d_r_pre = d_r * r * (1.0 - r)
    d_w_z = y.T @ d_z_pre
    d_u_z = h_prev.T @ d_z_pre
    d_b_z = d_z_pre.sum(axis=0)
    d_w_r = y.T @ d_r_pre
    d_u_r = h_prev.T @ d_r_pre
    d_b_r = d_r_pre.sum(axis=0)
    d_y = d_y + d_z_pre @ cache["w_z"].T + d_r_pre @ cache["w_r"].T
    d_h_prev = d_h_prev + d_z_pre @ cache["u_z"].T + d_r_pre @ cache["u_r"].T

    return (d_y, d_h_prev, d_w_z, d_u_z, d_b_z, d_w_r, d_u_r, d_b_r, d_w_h, d_u_h, d_b_h)


# ---------------------------------------------------------------------------
# LSTM step
# ---------------------------------------------------------------------------
def lstm_step_forward(
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    w_i: np.ndarray, u_i: np.ndarray, b_i: np.ndarray,
    w_f: np.ndarray, u_f: np.ndarray, b_f: np.ndarray,
    w_o: np.ndarray, u_o: np.ndarray, b_o: np.ndarray,
    w_g: np.ndarray, u_g: np.ndarray, b_g: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """One LSTM timestep; returns ``(h, c, cache)``.

    The cell state and hidden state become *two* tape nodes sharing this
    cache (see :class:`repro.nn.lstm.LSTMCell`), so the backward pass is
    split into :func:`lstm_step_backward_c` (through ``c``'s gates) and
    :func:`lstm_step_backward_h` (through the output gate).
    """
    i = _sigmoid(x @ w_i + h_prev @ u_i + b_i)
    f = _sigmoid(x @ w_f + h_prev @ u_f + b_f)
    o = _sigmoid(x @ w_o + h_prev @ u_o + b_o)
    g = np.tanh(x @ w_g + h_prev @ u_g + b_g)
    c = f * c_prev + i * g
    tc = np.tanh(c)
    h = o * tc
    cache = {
        "x": x, "h_prev": h_prev, "c_prev": c_prev,
        "i": i, "f": f, "o": o, "g": g, "tc": tc,
        "w_i": w_i, "u_i": u_i, "w_f": w_f, "u_f": u_f,
        "w_o": w_o, "u_o": u_o, "w_g": w_g, "u_g": u_g,
    }
    return h, c, cache


def lstm_step_backward_h(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(x, h_prev, c, w_o, u_o, b_o)`` for ``h = o * tanh(c)``."""
    x, h_prev, o, tc = cache["x"], cache["h_prev"], cache["o"], cache["tc"]
    d_o = grad * tc
    d_c = grad * o * (1.0 - tc * tc)
    d_o_pre = d_o * o * (1.0 - o)
    return (
        d_o_pre @ cache["w_o"].T,
        d_o_pre @ cache["u_o"].T,
        d_c,
        x.T @ d_o_pre,
        h_prev.T @ d_o_pre,
        d_o_pre.sum(axis=0),
    )


def lstm_step_backward_c(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients for ``c = f * c_prev + i * g`` aligned with
    ``(x, h_prev, c_prev, w_i, u_i, b_i, w_f, u_f, b_f, w_g, u_g, b_g)``."""
    x, h_prev, c_prev = cache["x"], cache["h_prev"], cache["c_prev"]
    i, f, g = cache["i"], cache["f"], cache["g"]

    d_i_pre = (grad * g) * i * (1.0 - i)
    d_f_pre = (grad * c_prev) * f * (1.0 - f)
    d_g_pre = (grad * i) * (1.0 - g * g)
    d_x = d_i_pre @ cache["w_i"].T + d_f_pre @ cache["w_f"].T + d_g_pre @ cache["w_g"].T
    d_h_prev = d_i_pre @ cache["u_i"].T + d_f_pre @ cache["u_f"].T + d_g_pre @ cache["u_g"].T
    return (
        d_x,
        d_h_prev,
        grad * f,
        x.T @ d_i_pre, h_prev.T @ d_i_pre, d_i_pre.sum(axis=0),
        x.T @ d_f_pre, h_prev.T @ d_f_pre, d_f_pre.sum(axis=0),
        x.T @ d_g_pre, h_prev.T @ d_g_pre, d_g_pre.sum(axis=0),
    )


# ---------------------------------------------------------------------------
# Additive attention pooling
# ---------------------------------------------------------------------------
def attention_forward(
    sequence: np.ndarray, projection: np.ndarray, context: np.ndarray
) -> tuple[np.ndarray, dict]:
    """Bahdanau-style pooling of ``(batch, timesteps, hidden)`` to ``(batch, hidden)``.

    The cache exposes ``weights`` — the softmax attention distribution —
    for analysis (:attr:`repro.nn.attention.AdditiveAttention.last_weights`).
    """
    batch, timesteps, hidden = sequence.shape
    flat = sequence.reshape(batch * timesteps, hidden)
    proj = np.tanh(flat @ projection)
    scores = (proj @ context).reshape(batch, timesteps)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=1, keepdims=True)
    out = np.einsum("bt,bth->bh", weights, sequence)
    cache = {
        "sequence": sequence, "projection": projection, "context": context,
        "flat": flat, "proj": proj, "weights": weights,
    }
    return out, cache


def attention_pool(
    sequence: np.ndarray, projection: np.ndarray, context: np.ndarray
) -> np.ndarray:
    """:func:`attention_forward` without the training cache.

    The inference compilers pool with this variant: same arithmetic, same
    bitwise output, but no cache dict holding the full flattened sequence
    and projection alive past the call.
    """
    batch, timesteps, hidden = sequence.shape
    flat = sequence.reshape(batch * timesteps, hidden)
    proj = np.tanh(flat @ projection)
    scores = (proj @ context).reshape(batch, timesteps)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=1, keepdims=True)
    return np.einsum("bt,bth->bh", weights, sequence)


def attention_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(sequence, projection, context)``."""
    sequence, weights, proj = cache["sequence"], cache["weights"], cache["proj"]
    batch, timesteps, hidden = sequence.shape

    d_weights = np.einsum("bh,bth->bt", grad, sequence)
    d_sequence = weights[:, :, None] * grad[:, None, :]
    # Softmax backward over the time axis.
    d_scores = weights * (d_weights - (d_weights * weights).sum(axis=1, keepdims=True))
    d_scores_flat = d_scores.reshape(batch * timesteps, 1)
    d_context = proj.T @ d_scores_flat
    d_proj_pre = (d_scores_flat @ cache["context"].T) * (1.0 - proj * proj)
    d_projection = cache["flat"].T @ d_proj_pre
    d_sequence = d_sequence + (d_proj_pre @ cache["projection"].T).reshape(
        batch, timesteps, hidden
    )
    return (d_sequence, d_projection, d_context)


# ---------------------------------------------------------------------------
# Prediction heads (paper §3.2)
# ---------------------------------------------------------------------------
def hadamard_head(v_d: np.ndarray, c: np.ndarray) -> np.ndarray:
    """``y' = Σ v_d ⊙ C`` (eq. 2) — row-wise dot product."""
    return np.einsum("ij,ij->i", v_d, c)


def hadamard_head_backward(grad: np.ndarray, v_d: np.ndarray, c: np.ndarray):
    return grad[:, None] * c, grad[:, None] * v_d


def bilinear_head(v_d: np.ndarray, r: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``y' = v_d · R · C``; also returns the intermediate ``v_d @ R``."""
    projected = v_d @ r
    return np.einsum("ij,ij->i", projected, c), projected


def bilinear_head_backward(
    grad: np.ndarray, v_d: np.ndarray, r: np.ndarray, c: np.ndarray, projected: np.ndarray
):
    d_projected = grad[:, None] * c
    return d_projected @ r.T, v_d.T @ d_projected, grad[:, None] * projected


# ---------------------------------------------------------------------------
# Fused sequence runners (inference engine fast path)
# ---------------------------------------------------------------------------
# ---------------------------------------------------------------------------
# Per-thread scratch workspaces for the fused sequence runners
# ---------------------------------------------------------------------------
# At batch size 1 the runners are dispatch-bound: allocating and slicing
# the gate/state buffers costs as much as several timesteps of math. The
# buffers carry no state between calls (every element is written before
# it is read), so they are cached per *thread*, keyed by shape and dtype.
# Thread-locality is what keeps a compiled engine shareable: two worker
# threads driving one engine never see each other's scratch. The one
# aliasing rule this imposes: anything a runner *returns* must be a fresh
# array (``states`` is allocated per call; final states are ``.copy()``d)
# — otherwise a caller running two sequences back to back (e.g. the
# bidirectional encoder) would watch its first result mutate.
_SCRATCH = threading.local()


def _workspace(key: tuple, builder):
    spaces = getattr(_SCRATCH, "spaces", None)
    if spaces is None:
        spaces = _SCRATCH.spaces = {}
    ws = spaces.get(key)
    if ws is None:
        ws = spaces[key] = builder()
    return ws


def _gru_buffers(batch: int, hidden: int, dtype) -> tuple:
    """Gate/state scratch for one GRU shape, loop-invariant views included."""
    hu = np.empty((batch, 3 * hidden), dtype=dtype)
    zr = np.empty((batch, 2 * hidden), dtype=dtype)
    return (
        hu,
        np.empty((batch, hidden), dtype=dtype),  # tmp
        np.empty((batch, hidden), dtype=dtype),  # h
        np.empty((batch, hidden), dtype=dtype),  # h_next
        zr,
        np.empty((batch, hidden), dtype=dtype),  # cand
        zr[:, :hidden],  # z view
        zr[:, hidden:],  # r view
        hu[:, : 2 * hidden],  # hu_zr view
        hu[:, 2 * hidden :],  # hu_h view
    )


def _lstm_buffers(batch: int, hidden: int, dtype) -> tuple:
    """Gate/state scratch for one LSTM shape (fused ``gates`` layout)."""
    hu = np.empty((batch, 4 * hidden), dtype=dtype)
    gates = np.empty((batch, 4 * hidden), dtype=dtype)
    return (
        hu,
        np.empty((batch, hidden), dtype=dtype),  # tmp
        np.empty((batch, hidden), dtype=dtype),  # c
        np.empty((batch, hidden), dtype=dtype),  # c_next
        np.empty((batch, hidden), dtype=dtype),  # h
        np.empty((batch, hidden), dtype=dtype),  # h_next
        gates,
        gates[:, : 3 * hidden],  # ifo view
        gates[:, 3 * hidden :],  # g view
        gates[:, :hidden],  # i view
        gates[:, hidden : 2 * hidden],  # f view
        gates[:, 2 * hidden : 3 * hidden],  # o view
    )


def _lstm_lowp_buffers(batch: int, hidden: int, dtype) -> tuple:
    """LSTM scratch with *contiguous* ``ifo``/``g`` (low-precision path)."""
    hu = np.empty((batch, 4 * hidden), dtype=dtype)
    ifo = np.empty((batch, 3 * hidden), dtype=dtype)
    return (
        hu,
        np.empty((batch, hidden), dtype=dtype),  # tmp
        np.empty((batch, hidden), dtype=dtype),  # c
        np.empty((batch, hidden), dtype=dtype),  # c_next
        np.empty((batch, hidden), dtype=dtype),  # h
        np.empty((batch, hidden), dtype=dtype),  # h_next
        ifo,
        np.empty((batch, hidden), dtype=dtype),  # g
        ifo[:, :hidden],  # i view
        ifo[:, hidden : 2 * hidden],  # f view
        ifo[:, 2 * hidden :],  # o view
        hu[:, : 3 * hidden],  # hu_ifo view
        hu[:, 3 * hidden :],  # hu_g view
    )


def _projection_buffers(timesteps: int, batch: int, wide: int, narrow: int, dtype) -> tuple:
    """GEMM output scratch for the split affine projections: 2-D matmul
    targets plus their pre-sliced ``(timesteps, batch, ...)`` views."""
    a = np.empty((timesteps * batch, wide), dtype=dtype)
    b = np.empty((timesteps * batch, narrow), dtype=dtype)
    return (
        a, a.reshape(timesteps, batch, wide),
        b, b.reshape(timesteps, batch, narrow),
    )


def fuse_gru_weights(
    w_z, u_z, b_z, w_r, u_r, b_r, w_h, u_h, b_h, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Pack per-gate GRU kernels into three fused, contiguous matrices.

    The update and reset gates share one input matmul and one recurrent
    matmul (``[W_z | W_r]``, ``[U_z | U_r]``); the candidate keeps its own
    recurrent kernel because of the reset-gate Hadamard. Per timestep this
    is 3 matmuls instead of 6 — the dominant cost at batch size 1.
    """
    hidden = u_h.shape[0]
    w = np.ascontiguousarray(np.hstack([w_z, w_r, w_h]), dtype=dtype)
    b = np.ascontiguousarray(np.concatenate([b_z, b_r, b_h]), dtype=dtype)
    # Affine-projection matrices for the low-precision batch path: with a
    # ones column appended to the input, ``[x | 1] @ [[W], [b]]`` computes
    # ``x @ W + b`` in a single GEMM (see _augmented_input).
    wb = np.vstack([w, b[None, :]])
    return {
        "w": w,
        # One recurrent matmul per step: [U_z | U_r | U_h]. Each output
        # column is the same length-``hidden`` dot product as in separate
        # per-gate matmuls, so fusing changes no bits.
        "u": np.ascontiguousarray(np.hstack([u_z, u_r, u_h]), dtype=dtype),
        "b_zr": np.ascontiguousarray(np.concatenate([b_z, b_r]), dtype=dtype),
        "b_h": np.ascontiguousarray(b_h, dtype=dtype),
        "b": b,
        "wb_zr": np.ascontiguousarray(wb[:, : 2 * hidden]),
        "wb_h": np.ascontiguousarray(wb[:, 2 * hidden :]),
        "hidden": hidden,
    }


def _input_projection(
    sequence: np.ndarray, w: np.ndarray, timesteps: int, batch: int, width: int
) -> np.ndarray:
    """All-timesteps input GEMM, ``(timesteps, batch, gates)`` layout.

    With one input feature (the RU-history hot path) the GEMM degenerates
    to K=1 — a scalar-row outer product that BLAS handles far slower than
    a broadcast multiply, and the multiply broadcasts straight off the
    transposed *view* (no contiguous copy, no reshapes). Each output
    element is the same single product either way, so both layouts are
    bitwise identical to the GEMM.
    """
    if sequence.shape[2] == 1:
        return sequence.transpose(1, 0, 2) * w[0]
    flat = np.ascontiguousarray(sequence.transpose(1, 0, 2)).reshape(timesteps * batch, -1)
    return (flat @ w).reshape(timesteps, batch, width)


def _augmented_input(
    sequence: np.ndarray, timesteps: int, batch: int, dtype: np.dtype
) -> np.ndarray:
    """``[x | 1]`` input matrix for single-GEMM affine projections.

    With a ones column appended, ``A @ [[W], [b]]`` computes
    ``x @ W + b`` in one BLAS call. This sidesteps numpy's broadcast
    machinery for the bias (and for the K=1 degenerate GEMM), whose
    short 48-element inner loops over thousands of rows cost several
    times the GEMM itself. Low-precision paths only: BLAS may fuse the
    multiply-adds (FMA), which is not bitwise identical to
    multiply-then-add — well within the float32 parity bound.
    """
    k = sequence.shape[2]
    n = timesteps * batch

    def build():
        fresh = np.empty((n, k + 1), dtype=dtype)
        fresh[:, k] = 1.0  # the ones column survives reuse untouched
        return fresh

    a = _workspace(("aug", n, k, dtype), build)
    a[:, :k] = np.ascontiguousarray(sequence.transpose(1, 0, 2)).reshape(n, k)
    return a


def _gru_sequence_lowp(
    sequence: np.ndarray, fused: dict[str, np.ndarray], act: str, return_sequences: bool
) -> np.ndarray:
    """Low-precision :func:`gru_sequence` batch path.

    Same recurrence, restructured for throughput rather than bitwise
    stability (float64 must never come through here): the input
    projection and bias land in one GEMM per gate block via
    :func:`_augmented_input` — split into contiguous ``zr``/``h`` arrays
    so no per-step operand is strided — t=0 activations read straight
    from the projection, and the state update uses the 3-op form
    ``cand + z * (h - cand)``. Everything lands within the float32
    parity bound (:data:`repro.nn.inference.FLOAT32_ATOL`).
    """
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    u = fused["u"]
    dtype = u.dtype
    act_fn = _resolve_act(act)
    a = _augmented_input(sequence, timesteps, batch, dtype)
    xw_zr_2d, xw_zr, xw_h_2d, xw_h = _workspace(
        ("gru_xw", timesteps, batch, hidden, dtype),
        lambda: _projection_buffers(timesteps, batch, 2 * hidden, hidden, dtype),
    )
    np.matmul(a, fused["wb_zr"], out=xw_zr_2d)
    np.matmul(a, fused["wb_h"], out=xw_h_2d)
    states = np.empty((batch, timesteps, hidden), dtype=dtype) if return_sequences else None
    hu, tmp, h, h_next, zr, cand, z_view, r_view, hu_zr, hu_h = _workspace(
        ("gru", batch, hidden, dtype), lambda: _gru_buffers(batch, hidden, dtype)
    )

    # t = 0: zero initial state — the recurrent matmul vanishes.
    _sigmoid_into(xw_zr[0], zr)
    _activation_into(act, xw_h[0], cand)
    np.multiply(z_view, cand, out=h)
    np.subtract(cand, h, out=h)  # h = (1 - z) * cand
    if return_sequences:
        states[:, 0, :] = h
    for t in range(1, timesteps):
        np.matmul(h, u, out=hu)
        np.add(xw_zr[t], hu_zr, out=zr)
        _sigmoid_inplace(zr)
        np.multiply(r_view, hu_h, out=tmp)
        np.add(xw_h[t], tmp, out=cand)
        if act_fn is not None:
            act_fn(cand)
        # h = cand + z * (h - cand)
        np.subtract(h, cand, out=tmp)
        np.multiply(z_view, tmp, out=tmp)
        np.add(cand, tmp, out=h_next)
        h, h_next = h_next, h
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h.copy()


def gru_sequence(
    sequence: np.ndarray, fused: dict[str, np.ndarray], act: str, return_sequences: bool = False
) -> np.ndarray:
    """Run a fused GRU over ``(batch, timesteps, input)`` without a tape.

    Batch-path structure (see DESIGN.md §6): one precombined input GEMM
    for *all* timesteps, laid out ``(timesteps, batch, 3*hidden)`` so each
    per-step slice is contiguous, then an allocation-free recurrent loop —
    gate/state buffers come from the per-thread :func:`_workspace` (every
    element is written before read, so reuse carries no state; returned
    arrays are always fresh) and every matmul/ufunc in the loop writes
    into them via ``out=``. The scalar operation order matches the naive
    form exactly, so float64 outputs are bitwise identical to the
    pre-restructure runner.

    Zero timesteps returns the zero initial state (what the autograd GRU
    yields when its loop never runs): ``(batch, hidden)`` zeros, or the
    empty ``(batch, 0, hidden)`` state sequence under
    ``return_sequences``.
    """
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    if timesteps == 0:
        shape = (batch, 0, hidden) if return_sequences else (batch, hidden)
        return np.zeros(shape, dtype=fused["w"].dtype)
    # Short-circuit the common float64 case before paying np.result_type
    # (~1us); a float64 sequence always promotes the pair to float64.
    if sequence.dtype != np.float64 and (
        np.result_type(sequence.dtype, fused["w"].dtype) != np.float64
    ):
        return _gru_sequence_lowp(sequence, fused, act, return_sequences)
    act_fn = _resolve_act(act)
    u, b_zr, b_h = fused["u"], fused["b_zr"], fused["b_h"]
    xw = _input_projection(sequence, fused["w"], timesteps, batch, 3 * hidden)
    states = np.empty((batch, timesteps, hidden), dtype=xw.dtype) if return_sequences else None
    hu, tmp, h, h_next, zr, cand, z_view, r_view, hu_zr, hu_h = _workspace(
        ("gru", batch, hidden, xw.dtype), lambda: _gru_buffers(batch, hidden, xw.dtype)
    )
    xw_zr, xw_h = xw[:, :, : 2 * hidden], xw[:, :, 2 * hidden :]

    # t = 0: zero initial state — the recurrent matmul vanishes.
    np.add(xw_zr[0], b_zr, out=zr)
    _sigmoid64_inplace(zr)
    np.add(xw_h[0], b_h, out=cand)
    if act_fn is not None:
        act_fn(cand)
    np.subtract(1.0, z_view, out=h)
    h *= cand
    if return_sequences:
        states[:, 0, :] = h
    for t in range(1, timesteps):
        # zr = sigmoid(xw_zr + h @ u_zr + b_zr)
        np.matmul(h, u, out=hu)
        np.add(xw_zr[t], hu_zr, out=zr)
        zr += b_zr
        _sigmoid64_inplace(zr)
        # cand = act(xw_h + r * (h @ u_h) + b_h)
        np.multiply(r_view, hu_h, out=tmp)
        np.add(xw_h[t], tmp, out=cand)
        cand += b_h
        if act_fn is not None:
            act_fn(cand)
        # h = (1 - z) * cand + z * h  (ping-pong into the spare state buffer)
        np.subtract(1.0, z_view, out=tmp)
        np.multiply(tmp, cand, out=tmp)
        np.multiply(z_view, h, out=h_next)
        np.add(tmp, h_next, out=h_next)
        h, h_next = h_next, h
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h.copy()


def fuse_lstm_weights(
    w_i, u_i, b_i, w_f, u_f, b_f, w_o, u_o, b_o, w_g, u_g, b_g, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Pack per-gate LSTM kernels into one input and one recurrent matrix."""
    hidden = u_i.shape[0]
    w = np.ascontiguousarray(np.hstack([w_i, w_f, w_o, w_g]), dtype=dtype)
    b = np.ascontiguousarray(np.concatenate([b_i, b_f, b_o, b_g]), dtype=dtype)
    wb = np.vstack([w, b[None, :]])  # affine projection, see fuse_gru_weights
    return {
        "w": w,
        "u": np.ascontiguousarray(np.hstack([u_i, u_f, u_o, u_g]), dtype=dtype),
        "b": b,
        "wb_ifo": np.ascontiguousarray(wb[:, : 3 * hidden]),
        "wb_g": np.ascontiguousarray(wb[:, 3 * hidden :]),
        "hidden": hidden,
    }


def _lstm_sequence_lowp(
    sequence: np.ndarray, fused: dict[str, np.ndarray], return_sequences: bool
) -> np.ndarray:
    """Low-precision :func:`lstm_sequence` batch path.

    Mirrors :func:`_gru_sequence_lowp`: single-GEMM affine projection
    split into contiguous ``ifo``/``g`` arrays, t=0 activations straight
    from the projection, no strided per-step operands. float64 must
    never come through here — its outputs are contractually bitwise
    stable and take the exact-order loop in :func:`lstm_sequence`.
    """
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    u = fused["u"]
    dtype = u.dtype
    a = _augmented_input(sequence, timesteps, batch, dtype)
    xw_ifo_2d, xw_ifo, xw_g_2d, xw_g = _workspace(
        ("lstm_xw", timesteps, batch, hidden, dtype),
        lambda: _projection_buffers(timesteps, batch, 3 * hidden, hidden, dtype),
    )
    np.matmul(a, fused["wb_ifo"], out=xw_ifo_2d)
    np.matmul(a, fused["wb_g"], out=xw_g_2d)
    states = np.empty((batch, timesteps, hidden), dtype=dtype) if return_sequences else None
    hu, tmp, c, c_next, h, h_next, ifo, g, i_view, f_view, o_view, hu_ifo, hu_g = _workspace(
        ("lstm_lowp", batch, hidden, dtype), lambda: _lstm_lowp_buffers(batch, hidden, dtype)
    )

    # t = 0: zero initial state — the recurrent matmul and f*c vanish.
    _sigmoid_into(xw_ifo[0], ifo)
    np.tanh(xw_g[0], out=g)
    np.multiply(i_view, g, out=c)  # c = i * g
    np.tanh(c, out=tmp)
    np.multiply(o_view, tmp, out=h)  # h = o * tanh(c)
    if return_sequences:
        states[:, 0, :] = h
    for t in range(1, timesteps):
        np.matmul(h, u, out=hu)
        np.add(xw_ifo[t], hu_ifo, out=ifo)
        np.add(xw_g[t], hu_g, out=g)
        _sigmoid_inplace(ifo)
        np.tanh(g, out=g)
        # c = f * c + i * g  (ping-pong into the spare cell buffer)
        np.multiply(f_view, c, out=c_next)
        np.multiply(i_view, g, out=tmp)
        c_next += tmp
        c, c_next = c_next, c
        # h = o * tanh(c)
        np.tanh(c, out=tmp)
        np.multiply(o_view, tmp, out=h_next)
        h, h_next = h_next, h
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h.copy()


def lstm_sequence(
    sequence: np.ndarray, fused: dict[str, np.ndarray], return_sequences: bool = False
) -> np.ndarray:
    """Run a fused LSTM over ``(batch, timesteps, input)`` without a tape.

    Same batch-path structure as :func:`gru_sequence`: one input GEMM in
    ``(timesteps, batch, 4*hidden)`` layout, then an allocation-free loop
    over per-thread ping-pong gate/state buffers with the naive runner's
    exact scalar operation order (float64 outputs stay bitwise
    identical). Zero timesteps returns the zero initial state.
    """
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    if timesteps == 0:
        shape = (batch, 0, hidden) if return_sequences else (batch, hidden)
        return np.zeros(shape, dtype=fused["w"].dtype)
    # Same float64 short-circuit as gru_sequence (np.result_type ~1us).
    if sequence.dtype != np.float64 and (
        np.result_type(sequence.dtype, fused["w"].dtype) != np.float64
    ):
        return _lstm_sequence_lowp(sequence, fused, return_sequences)
    u, b = fused["u"], fused["b"]
    xw = _input_projection(sequence, fused["w"], timesteps, batch, 4 * hidden)
    states = np.empty((batch, timesteps, hidden), dtype=xw.dtype) if return_sequences else None
    hu, tmp, c, c_next, h, h_next, gates, ifo, g, i_view, f_view, o_view = _workspace(
        ("lstm", batch, hidden, xw.dtype), lambda: _lstm_buffers(batch, hidden, xw.dtype)
    )

    # t = 0: zero initial state — the recurrent matmul and f*c vanish.
    np.add(xw[0], b, out=gates)
    _sigmoid64_inplace(ifo)
    np.tanh(g, out=g)
    np.multiply(i_view, g, out=c)  # c = i * g
    np.tanh(c, out=tmp)
    np.multiply(o_view, tmp, out=h)  # h = o * tanh(c)
    if return_sequences:
        states[:, 0, :] = h
    for t in range(1, timesteps):
        # gates = xw + h @ u + b
        np.matmul(h, u, out=hu)
        np.add(xw[t], hu, out=gates)
        gates += b
        _sigmoid64_inplace(ifo)
        np.tanh(g, out=g)
        # c = f * c + i * g  (ping-pong into the spare cell buffer)
        np.multiply(f_view, c, out=c_next)
        np.multiply(i_view, g, out=tmp)
        c_next += tmp
        c, c_next = c_next, c
        # h = o * tanh(c)
        np.tanh(c, out=tmp)
        np.multiply(o_view, tmp, out=h_next)
        h, h_next = h_next, h
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h.copy()
