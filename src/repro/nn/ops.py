"""Functional numpy kernels shared by the autograd layers and the inference engine.

This module is the *ops core* of the ``repro.nn`` stack: every forward
kernel is pure numpy — no :class:`~repro.nn.tensor.Tensor`, no tape — and
returns ``(output, cache)`` where ``cache`` holds exactly the intermediates
its matching ``*_backward`` kernel needs. Two consumers sit on top:

- the layer classes (:mod:`repro.nn.layers`, :mod:`repro.nn.gru`,
  :mod:`repro.nn.lstm`, :mod:`repro.nn.attention`) call a forward kernel
  once and register the matching backward kernel as a single tape node via
  :func:`repro.nn.tensor.apply_op` — differentiable training math;
- the tape-free engine (:mod:`repro.nn.inference`) calls the forward
  kernels (and the fused sequence runners at the bottom of this module)
  directly and throws the caches away — lean serving math.

Keeping both paths on one set of kernels is what makes the engine's
``assert_close`` parity guarantee cheap to maintain: there is one
implementation of the math, exercised by the finite-difference gradient
checks in ``tests/nn/``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "activation",
    "activation_delta",
    "dense_forward",
    "dense_backward",
    "embedding_forward",
    "embedding_backward",
    "dropout_forward",
    "dropout_backward",
    "gru_step_forward",
    "gru_step_backward",
    "lstm_step_forward",
    "lstm_step_backward_h",
    "lstm_step_backward_c",
    "attention_forward",
    "attention_backward",
    "hadamard_head",
    "hadamard_head_backward",
    "bilinear_head",
    "bilinear_head_backward",
    "fuse_gru_weights",
    "gru_sequence",
    "fuse_lstm_weights",
    "lstm_sequence",
    "ACTIVATION_NAMES",
]

ACTIVATION_NAMES = ("linear", "relu", "sigmoid", "tanh")


try:  # scipy's expit is a single C ufunc (no temporaries for exp/add/divide)
    from scipy.special import expit as _sigmoid
except ImportError:  # pragma: no cover - scipy is a declared dependency

    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))


def activation(name: str, pre: np.ndarray) -> np.ndarray:
    """Apply a named activation to pre-activation values."""
    if name == "linear":
        return pre
    if name == "relu":
        return np.maximum(pre, 0.0)
    if name == "sigmoid":
        return _sigmoid(pre)
    if name == "tanh":
        return np.tanh(pre)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


def activation_delta(name: str, grad: np.ndarray, pre: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. ``pre`` given the gradient w.r.t. ``out``."""
    if name == "linear":
        return grad
    if name == "relu":
        return grad * (pre > 0)
    if name == "sigmoid":
        return grad * out * (1.0 - out)
    if name == "tanh":
        return grad * (1.0 - out * out)
    raise ValueError(f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}")


# ---------------------------------------------------------------------------
# Dense
# ---------------------------------------------------------------------------
def dense_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, act: str = "linear"
) -> tuple[np.ndarray, dict]:
    """``activation(x @ weight + bias)`` for 1-d or 2-d ``x``."""
    pre = x @ weight + bias
    out = activation(act, pre)
    return out, {"x": x, "weight": weight, "pre": pre, "out": out, "act": act}


def dense_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(d_x, d_weight, d_bias)``."""
    x, weight = cache["x"], cache["weight"]
    delta = activation_delta(cache["act"], grad, cache["pre"], cache["out"])
    if x.ndim == 1:
        return delta @ weight.T, np.outer(x, delta), delta
    return delta @ weight.T, x.T @ delta, delta.sum(axis=0)


# ---------------------------------------------------------------------------
# Embedding gather
# ---------------------------------------------------------------------------
def embedding_forward(table: np.ndarray, ids: np.ndarray) -> tuple[np.ndarray, dict]:
    """Row gather ``out[i] = table[ids[i]]``."""
    ids = np.asarray(ids, dtype=np.int64)
    return table[ids], {"shape": table.shape, "ids": ids}


def embedding_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray]:
    """Scatter-add the output gradient back into a dense table gradient."""
    full = np.zeros(cache["shape"], dtype=np.float64)
    np.add.at(full, cache["ids"], grad)
    return (full,)


# ---------------------------------------------------------------------------
# Dropout
# ---------------------------------------------------------------------------
def dropout_forward(
    x: np.ndarray, rate: float, rng: np.random.Generator
) -> tuple[np.ndarray, dict]:
    """Inverted dropout; the inference engine simply never calls this."""
    if not 0.0 < rate < 1.0:
        raise ValueError("dropout rate must be in (0, 1)")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * mask, {"mask": mask}


def dropout_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray]:
    return (grad * cache["mask"],)


# ---------------------------------------------------------------------------
# GRU step (Appendix A equations)
# ---------------------------------------------------------------------------
def gru_step_forward(
    y: np.ndarray,
    h_prev: np.ndarray,
    w_z: np.ndarray,
    u_z: np.ndarray,
    b_z: np.ndarray,
    w_r: np.ndarray,
    u_r: np.ndarray,
    b_r: np.ndarray,
    w_h: np.ndarray,
    u_h: np.ndarray,
    b_h: np.ndarray,
    act: str = "relu",
) -> tuple[np.ndarray, dict]:
    """One GRU timestep on ``(batch, input)`` / ``(batch, hidden)`` arrays."""
    z = _sigmoid(y @ w_z + h_prev @ u_z + b_z)
    r = _sigmoid(y @ w_r + h_prev @ u_r + b_r)
    hu = h_prev @ u_h
    pre = y @ w_h + r * hu + b_h
    cand = activation(act, pre)
    h = (1.0 - z) * cand + z * h_prev
    cache = {
        "y": y, "h_prev": h_prev, "z": z, "r": r, "hu": hu,
        "pre": pre, "cand": cand, "act": act,
        "w_z": w_z, "u_z": u_z, "w_r": w_r, "u_r": u_r, "w_h": w_h, "u_h": u_h,
    }
    return h, cache


def gru_step_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(y, h_prev, w_z, u_z, b_z, w_r, u_r, b_r, w_h, u_h, b_h)``."""
    y, h_prev = cache["y"], cache["h_prev"]
    z, r, hu, cand = cache["z"], cache["r"], cache["hu"], cache["cand"]

    d_z = grad * (h_prev - cand)
    d_cand = grad * (1.0 - z)
    d_h_prev = grad * z

    d_pre = activation_delta(cache["act"], d_cand, cache["pre"], cand)
    d_w_h = y.T @ d_pre
    d_b_h = d_pre.sum(axis=0)
    d_y = d_pre @ cache["w_h"].T
    d_r = d_pre * hu
    d_hu = d_pre * r
    d_u_h = h_prev.T @ d_hu
    d_h_prev = d_h_prev + d_hu @ cache["u_h"].T

    d_z_pre = d_z * z * (1.0 - z)
    d_r_pre = d_r * r * (1.0 - r)
    d_w_z = y.T @ d_z_pre
    d_u_z = h_prev.T @ d_z_pre
    d_b_z = d_z_pre.sum(axis=0)
    d_w_r = y.T @ d_r_pre
    d_u_r = h_prev.T @ d_r_pre
    d_b_r = d_r_pre.sum(axis=0)
    d_y = d_y + d_z_pre @ cache["w_z"].T + d_r_pre @ cache["w_r"].T
    d_h_prev = d_h_prev + d_z_pre @ cache["u_z"].T + d_r_pre @ cache["u_r"].T

    return (d_y, d_h_prev, d_w_z, d_u_z, d_b_z, d_w_r, d_u_r, d_b_r, d_w_h, d_u_h, d_b_h)


# ---------------------------------------------------------------------------
# LSTM step
# ---------------------------------------------------------------------------
def lstm_step_forward(
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    w_i: np.ndarray, u_i: np.ndarray, b_i: np.ndarray,
    w_f: np.ndarray, u_f: np.ndarray, b_f: np.ndarray,
    w_o: np.ndarray, u_o: np.ndarray, b_o: np.ndarray,
    w_g: np.ndarray, u_g: np.ndarray, b_g: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """One LSTM timestep; returns ``(h, c, cache)``.

    The cell state and hidden state become *two* tape nodes sharing this
    cache (see :class:`repro.nn.lstm.LSTMCell`), so the backward pass is
    split into :func:`lstm_step_backward_c` (through ``c``'s gates) and
    :func:`lstm_step_backward_h` (through the output gate).
    """
    i = _sigmoid(x @ w_i + h_prev @ u_i + b_i)
    f = _sigmoid(x @ w_f + h_prev @ u_f + b_f)
    o = _sigmoid(x @ w_o + h_prev @ u_o + b_o)
    g = np.tanh(x @ w_g + h_prev @ u_g + b_g)
    c = f * c_prev + i * g
    tc = np.tanh(c)
    h = o * tc
    cache = {
        "x": x, "h_prev": h_prev, "c_prev": c_prev,
        "i": i, "f": f, "o": o, "g": g, "tc": tc,
        "w_i": w_i, "u_i": u_i, "w_f": w_f, "u_f": u_f,
        "w_o": w_o, "u_o": u_o, "w_g": w_g, "u_g": u_g,
    }
    return h, c, cache


def lstm_step_backward_h(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(x, h_prev, c, w_o, u_o, b_o)`` for ``h = o * tanh(c)``."""
    x, h_prev, o, tc = cache["x"], cache["h_prev"], cache["o"], cache["tc"]
    d_o = grad * tc
    d_c = grad * o * (1.0 - tc * tc)
    d_o_pre = d_o * o * (1.0 - o)
    return (
        d_o_pre @ cache["w_o"].T,
        d_o_pre @ cache["u_o"].T,
        d_c,
        x.T @ d_o_pre,
        h_prev.T @ d_o_pre,
        d_o_pre.sum(axis=0),
    )


def lstm_step_backward_c(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients for ``c = f * c_prev + i * g`` aligned with
    ``(x, h_prev, c_prev, w_i, u_i, b_i, w_f, u_f, b_f, w_g, u_g, b_g)``."""
    x, h_prev, c_prev = cache["x"], cache["h_prev"], cache["c_prev"]
    i, f, g = cache["i"], cache["f"], cache["g"]

    d_i_pre = (grad * g) * i * (1.0 - i)
    d_f_pre = (grad * c_prev) * f * (1.0 - f)
    d_g_pre = (grad * i) * (1.0 - g * g)
    d_x = d_i_pre @ cache["w_i"].T + d_f_pre @ cache["w_f"].T + d_g_pre @ cache["w_g"].T
    d_h_prev = d_i_pre @ cache["u_i"].T + d_f_pre @ cache["u_f"].T + d_g_pre @ cache["u_g"].T
    return (
        d_x,
        d_h_prev,
        grad * f,
        x.T @ d_i_pre, h_prev.T @ d_i_pre, d_i_pre.sum(axis=0),
        x.T @ d_f_pre, h_prev.T @ d_f_pre, d_f_pre.sum(axis=0),
        x.T @ d_g_pre, h_prev.T @ d_g_pre, d_g_pre.sum(axis=0),
    )


# ---------------------------------------------------------------------------
# Additive attention pooling
# ---------------------------------------------------------------------------
def attention_forward(
    sequence: np.ndarray, projection: np.ndarray, context: np.ndarray
) -> tuple[np.ndarray, dict]:
    """Bahdanau-style pooling of ``(batch, timesteps, hidden)`` to ``(batch, hidden)``.

    The cache exposes ``weights`` — the softmax attention distribution —
    for analysis (:attr:`repro.nn.attention.AdditiveAttention.last_weights`).
    """
    batch, timesteps, hidden = sequence.shape
    flat = sequence.reshape(batch * timesteps, hidden)
    proj = np.tanh(flat @ projection)
    scores = (proj @ context).reshape(batch, timesteps)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=1, keepdims=True)
    out = np.einsum("bt,bth->bh", weights, sequence)
    cache = {
        "sequence": sequence, "projection": projection, "context": context,
        "flat": flat, "proj": proj, "weights": weights,
    }
    return out, cache


def attention_backward(grad: np.ndarray, cache: dict) -> tuple[np.ndarray, ...]:
    """Gradients aligned with ``(sequence, projection, context)``."""
    sequence, weights, proj = cache["sequence"], cache["weights"], cache["proj"]
    batch, timesteps, hidden = sequence.shape

    d_weights = np.einsum("bh,bth->bt", grad, sequence)
    d_sequence = weights[:, :, None] * grad[:, None, :]
    # Softmax backward over the time axis.
    d_scores = weights * (d_weights - (d_weights * weights).sum(axis=1, keepdims=True))
    d_scores_flat = d_scores.reshape(batch * timesteps, 1)
    d_context = proj.T @ d_scores_flat
    d_proj_pre = (d_scores_flat @ cache["context"].T) * (1.0 - proj * proj)
    d_projection = cache["flat"].T @ d_proj_pre
    d_sequence = d_sequence + (d_proj_pre @ cache["projection"].T).reshape(
        batch, timesteps, hidden
    )
    return (d_sequence, d_projection, d_context)


# ---------------------------------------------------------------------------
# Prediction heads (paper §3.2)
# ---------------------------------------------------------------------------
def hadamard_head(v_d: np.ndarray, c: np.ndarray) -> np.ndarray:
    """``y' = Σ v_d ⊙ C`` (eq. 2) — row-wise dot product."""
    return np.einsum("ij,ij->i", v_d, c)


def hadamard_head_backward(grad: np.ndarray, v_d: np.ndarray, c: np.ndarray):
    return grad[:, None] * c, grad[:, None] * v_d


def bilinear_head(v_d: np.ndarray, r: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``y' = v_d · R · C``; also returns the intermediate ``v_d @ R``."""
    projected = v_d @ r
    return np.einsum("ij,ij->i", projected, c), projected


def bilinear_head_backward(
    grad: np.ndarray, v_d: np.ndarray, r: np.ndarray, c: np.ndarray, projected: np.ndarray
):
    d_projected = grad[:, None] * c
    return d_projected @ r.T, v_d.T @ d_projected, grad[:, None] * projected


# ---------------------------------------------------------------------------
# Fused sequence runners (inference engine fast path)
# ---------------------------------------------------------------------------
def fuse_gru_weights(
    w_z, u_z, b_z, w_r, u_r, b_r, w_h, u_h, b_h, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Pack per-gate GRU kernels into three fused, contiguous matrices.

    The update and reset gates share one input matmul and one recurrent
    matmul (``[W_z | W_r]``, ``[U_z | U_r]``); the candidate keeps its own
    recurrent kernel because of the reset-gate Hadamard. Per timestep this
    is 3 matmuls instead of 6 — the dominant cost at batch size 1.
    """
    return {
        "w": np.ascontiguousarray(np.hstack([w_z, w_r, w_h]), dtype=dtype),
        "u_zr": np.ascontiguousarray(np.hstack([u_z, u_r]), dtype=dtype),
        "u_h": np.ascontiguousarray(u_h, dtype=dtype),
        "b_zr": np.ascontiguousarray(np.concatenate([b_z, b_r]), dtype=dtype),
        "b_h": np.ascontiguousarray(b_h, dtype=dtype),
        "hidden": u_h.shape[0],
    }


def gru_sequence(
    sequence: np.ndarray, fused: dict[str, np.ndarray], act: str, return_sequences: bool = False
) -> np.ndarray:
    """Run a fused GRU over ``(batch, timesteps, input)`` without a tape."""
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    u_zr, u_h, b_zr, b_h = fused["u_zr"], fused["u_h"], fused["b_zr"], fused["b_h"]
    xw_all = sequence.reshape(batch * timesteps, -1) @ fused["w"]
    xw_all = xw_all.reshape(batch, timesteps, 3 * hidden)
    states = np.empty((batch, timesteps, hidden), dtype=xw_all.dtype) if return_sequences else None
    h = None  # zero initial state: both recurrent matmuls vanish at t=0
    for t in range(timesteps):
        xw = xw_all[:, t, :]
        if h is None:
            zr = _sigmoid(xw[:, : 2 * hidden] + b_zr)
            cand = activation(act, xw[:, 2 * hidden :] + b_h)
            h = (1.0 - zr[:, :hidden]) * cand
        else:
            zr = _sigmoid(xw[:, : 2 * hidden] + h @ u_zr + b_zr)
            z = zr[:, :hidden]
            cand = activation(act, xw[:, 2 * hidden :] + zr[:, hidden:] * (h @ u_h) + b_h)
            h = (1.0 - z) * cand + z * h
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h


def fuse_lstm_weights(
    w_i, u_i, b_i, w_f, u_f, b_f, w_o, u_o, b_o, w_g, u_g, b_g, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Pack per-gate LSTM kernels into one input and one recurrent matrix."""
    return {
        "w": np.ascontiguousarray(np.hstack([w_i, w_f, w_o, w_g]), dtype=dtype),
        "u": np.ascontiguousarray(np.hstack([u_i, u_f, u_o, u_g]), dtype=dtype),
        "b": np.ascontiguousarray(np.concatenate([b_i, b_f, b_o, b_g]), dtype=dtype),
        "hidden": u_i.shape[0],
    }


def lstm_sequence(
    sequence: np.ndarray, fused: dict[str, np.ndarray], return_sequences: bool = False
) -> np.ndarray:
    """Run a fused LSTM over ``(batch, timesteps, input)`` without a tape."""
    batch, timesteps, _ = sequence.shape
    hidden = fused["hidden"]
    u, b = fused["u"], fused["b"]
    xw_all = sequence.reshape(batch * timesteps, -1) @ fused["w"]
    xw_all = xw_all.reshape(batch, timesteps, 4 * hidden)
    states = np.empty((batch, timesteps, hidden), dtype=xw_all.dtype) if return_sequences else None
    h = c = None  # zero initial state: recurrent matmul and f*c vanish at t=0
    for t in range(timesteps):
        gates = xw_all[:, t, :] + b if h is None else xw_all[:, t, :] + h @ u + b
        ifo = _sigmoid(gates[:, : 3 * hidden])
        g = np.tanh(gates[:, 3 * hidden :])
        i = ifo[:, :hidden]
        o = ifo[:, 2 * hidden : 3 * hidden]
        c = i * g if c is None else ifo[:, hidden : 2 * hidden] * c + i * g
        h = o * np.tanh(c)
        if return_sequences:
            states[:, t, :] = h
    return states if return_sequences else h
