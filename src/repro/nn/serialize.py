"""Model (de)serialization.

The paper notes (§6) that the full Env2Vec artifact — the DL weights plus
the environment embeddings — serializes to under 10 MB and is served over
HTTP to the prediction pipeline. Here we persist a model's state dict plus
an arbitrary JSON-serializable config blob into a single ``.npz`` file;
:mod:`repro.workflow.model_store` layers the paper's fetch/publish workflow
on top of this format.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = [
    "save_state",
    "load_state",
    "save_model_bytes",
    "load_model_bytes",
    "save_encoder_bytes",
    "load_encoder_bytes",
]

_CONFIG_KEY = "__config__"
_ENCODER_KEY = "encoder"


def save_model_bytes(model: Module, config: dict | None = None, compress: bool = False) -> bytes:
    """Serialize a model's parameters (+ config) into npz bytes.

    ``compress=True`` uses deflate (``np.savez_compressed``) — smaller
    blobs for the HTTP model store at some CPU cost on publish.
    """
    buffer = io.BytesIO()
    arrays = {name: data for name, data in model.state_dict().items()}
    if _CONFIG_KEY in arrays:
        raise ValueError(f"parameter name {_CONFIG_KEY!r} is reserved")
    arrays[_CONFIG_KEY] = np.frombuffer(json.dumps(config or {}).encode("utf-8"), dtype=np.uint8)
    (np.savez_compressed if compress else np.savez)(buffer, **arrays)
    return buffer.getvalue()


def load_model_bytes(blob: bytes) -> tuple[dict[str, np.ndarray], dict]:
    """Inverse of :func:`save_model_bytes`; returns (state_dict, config)."""
    with np.load(io.BytesIO(blob)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    config_raw = arrays.pop(_CONFIG_KEY, None)
    config = json.loads(config_raw.tobytes().decode("utf-8")) if config_raw is not None else {}
    return arrays, config


def save_encoder_bytes(encoder) -> bytes:
    """Serialize a :class:`~repro.nn.encoders.SequenceEncoder` standalone.

    The encoder's :meth:`to_config` recipe travels with the weights, so
    :func:`load_encoder_bytes` can rebuild the exact registered variant
    without the caller knowing which one was saved.
    """
    return save_model_bytes(encoder, {_ENCODER_KEY: encoder.to_config()})


def load_encoder_bytes(blob: bytes):
    """Inverse of :func:`save_encoder_bytes`."""
    from .encoders import encoder_from_config
    from .init import deferred_init

    state, config = load_model_bytes(blob)
    recipe = config.get(_ENCODER_KEY)
    if recipe is None:
        raise ValueError("blob is not a serialized SequenceEncoder (missing recipe)")
    with deferred_init():
        encoder = encoder_from_config(recipe)
    encoder.load_state_dict(state)
    return encoder


def save_state(model: Module, path: str | Path, config: dict | None = None) -> int:
    """Write the model to ``path``; returns the file size in bytes."""
    blob = save_model_bytes(model, config)
    path = Path(path)
    path.write_bytes(blob)
    return len(blob)


def load_state(model: Module, path: str | Path) -> dict:
    """Load parameters from ``path`` into ``model``; returns the stored config."""
    state, config = load_model_bytes(Path(path).read_bytes())
    model.load_state_dict(state)
    return config
