"""Generic training loop with mini-batching and early stopping.

Implements the training regime of the paper's Appendix A.1: MSE loss,
Adam updates, dropout regularization inside the model, and *early stopping*
that halts training when the validation loss stops improving and restores
the best weights observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..obs import get_observability
from .inference import UnsupportedModuleError, compile_module
from .init import ensure_rng
from .layers import Module
from .losses import get_loss
from .optim import Adam, Optimizer
from .tensor import Tensor, no_grad

__all__ = ["EarlyStopping", "ReduceLROnPlateau", "TrainingDiverged", "TrainingHistory", "Trainer"]

Batch = Mapping[str, np.ndarray]

_OBS = get_observability()
_M_EPOCHS = _OBS.counter(
    "repro_nn_epochs_total", "Optimization epochs completed by Trainer.fit."
)
_M_BATCHES = _OBS.counter(
    "repro_nn_batches_total", "Mini-batch gradient steps taken by Trainer.fit."
)


class TrainingDiverged(RuntimeError):
    """Training produced a non-finite loss; the fit was aborted.

    Raised by :meth:`Trainer.fit` the moment an epoch's training or
    validation loss goes NaN/Inf — continuing would Adam-step poisoned
    gradients into every weight. The model is left as-is at the failing
    epoch and callers (the training pipeline) are expected to discard it
    and keep the previous published model serving.
    """

    def __init__(self, message: str, epoch: int):
        super().__init__(message)
        self.epoch = epoch


@dataclass
class EarlyStopping:
    """Stop training when a monitored loss has not improved for ``patience`` epochs.

    ``min_delta`` is the smallest decrease counted as an improvement;
    ``restore_best`` reloads the best weights seen when stopping.
    """

    patience: int = 5
    min_delta: float = 0.0
    restore_best: bool = True

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        self.best_loss = np.inf
        self.best_state: dict[str, np.ndarray] | None = None
        self.wait = 0

    def update(self, loss: float, model: Module) -> bool:
        """Record an epoch's validation loss. Returns True when training should stop."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.wait = 0
            if self.restore_best:
                self.best_state = model.state_dict()
            return False
        self.wait += 1
        return self.wait >= self.patience

    def finalize(self, model: Module) -> None:
        if self.restore_best and self.best_state is not None:
            model.load_state_dict(self.best_state)


@dataclass
class ReduceLROnPlateau:
    """Halve (by ``factor``) the optimizer's learning rate when the
    validation loss stalls for ``patience`` epochs.

    A standard complement to early stopping: the model escapes noisy
    plateaus by taking smaller steps before the stopper gives up.
    """

    patience: int = 3
    factor: float = 0.5
    min_lr: float = 1e-5
    min_delta: float = 0.0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < self.factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        if self.min_lr <= 0:
            raise ValueError("min_lr must be positive")
        self.best_loss = np.inf
        self.wait = 0
        self.reductions = 0

    def update(self, loss: float, optimizer: Optimizer) -> bool:
        """Record an epoch's loss; returns True when the lr was reduced."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.wait = 0
            return False
        self.wait += 1
        if self.wait >= self.patience and optimizer.lr > self.min_lr:
            optimizer.lr = max(self.min_lr, optimizer.lr * self.factor)
            self.wait = 0
            self.reductions += 1
            return True
        return False


@dataclass
class TrainingHistory:
    """Per-epoch loss curves recorded by :class:`Trainer`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Trains any :class:`Module` whose ``forward`` accepts keyword arrays.

    The model's ``forward`` is called as ``model(**batch)`` where ``batch``
    maps input names to numpy arrays sliced along axis 0. This keeps the
    trainer agnostic to the Env2Vec model's three heterogeneous inputs
    (contextual features, RU history window, environment id columns).

    ``evaluate`` and ``predict`` route through the tape-free inference
    engine (:mod:`repro.nn.inference`) whenever the model's type has a
    registered compile rule, falling back to the autograd forward under
    ``no_grad`` otherwise.

    Shuffling uses ``rng`` when given, else a generator seeded with
    ``seed`` — pass either to make two identical ``fit`` calls produce
    identical histories.
    """

    def __init__(
        self,
        model: Module,
        loss: str | Callable[[Tensor, Tensor], Tensor] = "mse",
        optimizer: Optimizer | None = None,
        lr: float = 0.001,
        batch_size: int = 128,
        max_epochs: int = 100,
        early_stopping: EarlyStopping | None = None,
        lr_scheduler: "ReduceLROnPlateau | None" = None,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        verbose: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.model = model
        self.loss_fn = get_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = optimizer if optimizer is not None else Adam(model.parameters(), lr=lr)
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.early_stopping = early_stopping
        self.lr_scheduler = lr_scheduler
        self.shuffle = shuffle
        self.rng = ensure_rng(rng, seed)
        self.verbose = verbose

    def fit(
        self,
        inputs: Batch,
        targets: np.ndarray,
        val_inputs: Batch | None = None,
        val_targets: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Run the training loop; returns the loss history."""
        n = _check_sizes(inputs, targets)
        has_val = val_inputs is not None and val_targets is not None
        if self.early_stopping is not None and not has_val:
            raise ValueError("early stopping requires validation data")
        if self.lr_scheduler is not None and not has_val:
            raise ValueError("lr scheduling requires validation data")

        history = TrainingHistory()
        targets = np.asarray(targets, dtype=np.float64)
        for epoch in range(self.max_epochs):
            order = self.rng.permutation(n) if self.shuffle else np.arange(n)
            self.model.train()
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                batch = {key: value[idx] for key, value in inputs.items()}
                batch_targets = Tensor(targets[idx])
                self.optimizer.zero_grad()
                predicted = self.model(**batch)
                loss = self.loss_fn(predicted, batch_targets)
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item() * len(idx)
                _M_BATCHES.inc()
            train_loss = epoch_loss / n
            if not np.isfinite(train_loss):
                raise TrainingDiverged(
                    f"training loss went non-finite ({train_loss}) at epoch {epoch}",
                    epoch=epoch,
                )
            history.train_loss.append(train_loss)
            _M_EPOCHS.inc()

            if has_val:
                val_loss = self.evaluate(val_inputs, val_targets)
                if not np.isfinite(val_loss):
                    raise TrainingDiverged(
                        f"validation loss went non-finite ({val_loss}) at epoch {epoch}",
                        epoch=epoch,
                    )
                history.val_loss.append(val_loss)
                if self.verbose:  # pragma: no cover - logging only
                    print(f"epoch {epoch}: train={history.train_loss[-1]:.5f} val={val_loss:.5f}")
                if self.lr_scheduler is not None:
                    self.lr_scheduler.update(val_loss, self.optimizer)
                if self.early_stopping is not None and self.early_stopping.update(val_loss, self.model):
                    history.stopped_epoch = epoch
                    break
        if self.early_stopping is not None:
            self.early_stopping.finalize(self.model)
        return history

    def _compile(self):
        """Snapshot the current weights into a tape-free engine, if possible."""
        try:
            return compile_module(self.model)
        except UnsupportedModuleError:
            return None

    def evaluate(self, inputs: Batch, targets: np.ndarray) -> float:
        """Average loss over the given data, in eval mode, without autograd."""
        n = _check_sizes(inputs, targets)
        targets = np.asarray(targets, dtype=np.float64)
        self.model.eval()
        engine = self._compile()
        total = 0.0
        with no_grad():
            for start in range(0, n, self.batch_size):
                batch = {key: value[start : start + self.batch_size] for key, value in inputs.items()}
                batch_targets = targets[start : start + self.batch_size]
                predicted = Tensor(engine(**batch)) if engine is not None else self.model(**batch)
                loss = self.loss_fn(predicted, Tensor(batch_targets))
                total += loss.item() * len(batch_targets)
        return total / n

    def predict(self, inputs: Batch) -> np.ndarray:
        """Model predictions as a numpy array, in eval mode."""
        n = _check_sizes(inputs, None)
        self.model.eval()
        engine = self._compile()
        if engine is not None:
            return engine.predict(inputs, batch_size=self.batch_size)
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, n, self.batch_size):
                batch = {key: value[start : start + self.batch_size] for key, value in inputs.items()}
                outputs.append(self.model(**batch).numpy())
        return np.concatenate(outputs, axis=0)


def _check_sizes(inputs: Batch, targets: np.ndarray | None) -> int:
    if not inputs:
        raise ValueError("inputs must contain at least one array")
    sizes = {key: len(value) for key, value in inputs.items()}
    n = next(iter(sizes.values()))
    if any(size != n for size in sizes.values()):
        raise ValueError(f"input arrays disagree on length: {sizes}")
    if targets is not None and len(targets) != n:
        raise ValueError(f"targets length {len(targets)} != inputs length {n}")
    if n == 0:
        raise ValueError("cannot train/evaluate on empty data")
    return n
