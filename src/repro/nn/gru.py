"""Gated recurrent units, following the formulation in the paper's Appendix A.

For each timestep t with input ``y_t`` and previous hidden state ``h_{t-1}``:

    z_t  = sigmoid(W^(z) y_t + U^(z) h_{t-1})              (update gate)
    r_t  = sigmoid(W^(r) y_t + U^(r) h_{t-1})              (reset gate)
    h'_t = f(W^(h) y_t + r_t ⊙ (U^(h) h_{t-1}))            (candidate state)
    h_t  = (1 - z_t) ⊙ h'_t + z_t ⊙ h_{t-1}

The paper adopts ReLU as the candidate activation ``f`` empirically
(Appendix A); ``tanh`` is also supported for comparison. The GRU consumes
the sliding window of historical resource-utilization values
``{y_{p-n}, ..., y_{p-1}}`` (RU_history in Figure 2) and its final hidden
state is the summary vector ``v_ts``.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from . import ops
from .layers import ACTIVATIONS, Module, Parameter
from .tensor import Tensor, apply_op

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step operating on ``(batch, input_size)`` tensors."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = initializers.ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.activation_name = activation
        # Input kernels W^(z), W^(r), W^(h)
        self.w_z = Parameter(initializers.glorot_uniform((input_size, hidden_size), rng), name="w_z")
        self.w_r = Parameter(initializers.glorot_uniform((input_size, hidden_size), rng), name="w_r")
        self.w_h = Parameter(initializers.glorot_uniform((input_size, hidden_size), rng), name="w_h")
        # Recurrent kernels U^(z), U^(r), U^(h)
        self.u_z = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng), name="u_z")
        self.u_r = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng), name="u_r")
        self.u_h = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng), name="u_h")
        # Gate biases
        self.b_z = Parameter(initializers.zeros((hidden_size,)), name="b_z")
        self.b_r = Parameter(initializers.zeros((hidden_size,)), name="b_r")
        self.b_h = Parameter(initializers.zeros((hidden_size,)), name="b_h")

    def forward(self, y_t: Tensor, h_prev: Tensor) -> Tensor:
        y_t = y_t if isinstance(y_t, Tensor) else Tensor(y_t)
        h_prev = h_prev if isinstance(h_prev, Tensor) else Tensor(h_prev)
        h, cache = ops.gru_step_forward(
            y_t.data, h_prev.data,
            self.w_z.data, self.u_z.data, self.b_z.data,
            self.w_r.data, self.u_r.data, self.b_r.data,
            self.w_h.data, self.u_h.data, self.b_h.data,
            act=self.activation_name,
        )
        parents = (
            y_t, h_prev,
            self.w_z, self.u_z, self.b_z,
            self.w_r, self.u_r, self.b_r,
            self.w_h, self.u_h, self.b_h,
        )
        return apply_op(parents, h, lambda grad: ops.gru_step_backward(grad, cache))


class GRU(Module):
    """Runs a :class:`GRUCell` over a ``(batch, timesteps, input_size)`` input.

    Returns the final hidden state ``v_ts`` of shape ``(batch, hidden_size)``
    (or the full hidden sequence if ``return_sequences`` is set).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        return_sequences: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, activation=activation, rng=rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    def forward(self, sequence: Tensor) -> Tensor:
        if sequence.ndim != 3:
            raise ValueError(f"GRU expects (batch, timesteps, input_size); got shape {sequence.shape}")
        batch, timesteps, _ = sequence.shape
        h_t = Tensor(np.zeros((batch, self.hidden_size)))
        states: list[Tensor] = []
        for t in range(timesteps):
            y_t = sequence[:, t, :]
            h_t = self.cell(y_t, h_t)
            if self.return_sequences:
                states.append(h_t)
        if self.return_sequences:
            return Tensor.stack(states, axis=1)
        return h_t
