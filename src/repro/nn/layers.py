"""Neural-network layers built on the :mod:`repro.nn.ops` functional core.

The layer set mirrors what the Env2Vec architecture (paper §3.1 and
Appendix A) requires from Keras: ``Dense`` (the FNN and dense combination
layers), ``Embedding`` (per-EM-field lookup tables with an ``<unk>`` row),
``Dropout`` (regularization, Appendix A.1), and ``Sequential`` for stacking.

Each layer's forward runs the pure-numpy kernel from :mod:`repro.nn.ops`
once and attaches the matching backward kernel as a single tape node
(:func:`repro.nn.tensor.apply_op`), so training records one fused node per
layer while the inference engine (:mod:`repro.nn.inference`) reuses the
identical kernels with no tape at all.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import init as initializers
from . import ops
from .tensor import Tensor, apply_op, is_grad_enabled

__all__ = ["Module", "Parameter", "Dense", "Dropout", "Embedding", "Sequential", "ACTIVATIONS"]


def _identity(x: Tensor) -> Tensor:
    return x


ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "linear": _identity,
    "relu": Tensor.relu,
    "sigmoid": Tensor.sigmoid,
    "tanh": Tensor.tanh,
}


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter discovery and train/eval switching."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, recursing into child modules."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_params(value, seen)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for key, value in self.__dict__.items():
            yield from _collect_named(key, value, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted parameter names to copies of their data."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} != {param.shape}")
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect_params(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for param in value.parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_params(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_params(item, seen)


def _collect_named(prefix: str, value, seen: set[int]) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield prefix, value
    elif isinstance(value, Module):
        for name, param in value.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield f"{prefix}.{name}", param
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _collect_named(f"{prefix}.{i}", item, seen)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _collect_named(f"{prefix}.{key}", item, seen)


def _collect_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)


class Dense(Module):
    """Fully connected layer: ``activation(x @ W + b)``.

    Matches the FNN hidden layer of Appendix A:
    ``q_t = sigma(W^(q) a_t + b_q)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "linear",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(ACTIVATIONS)}")
        rng = initializers.ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.activation_name = activation
        self.weight = Parameter(initializers.glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(initializers.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        out, cache = ops.dense_forward(
            x.data, self.weight.data, self.bias.data, self.activation_name
        )
        return apply_op(
            (x, self.weight, self.bias), out, lambda grad: ops.dense_backward(grad, cache)
        )


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = initializers.ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0 or not is_grad_enabled():
            return x
        out, cache = ops.dropout_forward(x.data, self.rate, self.rng)
        return apply_op((x,), out, lambda grad: ops.dropout_backward(grad, cache))


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    Paper §3.1 ("Embeddings for environments"): one table per environment
    feature, each row an embedding for one feature value, plus an explicit
    *unknown* row used for values never seen in training — analogous to the
    ``<unk>`` token in NLP. By convention the unknown row is index
    ``num_embeddings - 1`` when the table is built by
    :class:`repro.core.embeddings.EnvironmentVocabulary`.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_embeddings < 1:
            raise ValueError("num_embeddings must be >= 1")
        rng = initializers.ensure_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            initializers.embedding_uniform((num_embeddings, embedding_dim), rng), name="weight"
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        out, cache = ops.embedding_forward(self.weight.data, ids)
        return apply_op((self.weight,), out, lambda grad: ops.embedding_backward(grad, cache))


class Sequential(Module):
    """Applies modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def append(self, module: Module) -> None:
        self.modules.append(module)
