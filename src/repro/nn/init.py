"""Weight initializers for the ``repro.nn`` stack.

Keras defaults are mirrored so the reproduction matches the paper's setup:
``glorot_uniform`` for dense kernels, ``orthogonal`` for recurrent kernels,
zeros for biases, and ``uniform(-0.05, 0.05)`` (Keras ``RandomUniform``) for
embedding tables.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "ensure_rng",
    "glorot_uniform",
    "he_uniform",
    "orthogonal",
    "zeros",
    "embedding_uniform",
    "deferred_init",
]

#: Seed behind every ``rng=None`` fallback in the stack. Constructing a
#: module without passing an rng used to mean "fresh entropy from the OS";
#: since the REP001 determinism audit it means "the deterministic default
#: stream" — two modules built with all-default arguments are identical.
DEFAULT_SEED = 0


def ensure_rng(
    rng: np.random.Generator | None, seed: int | None = None
) -> np.random.Generator:
    """``rng`` unchanged, or a deterministically seeded generator.

    The replacement for ``rng if rng is not None else default_rng()``:
    an unseeded ``default_rng()`` (REP001) silently made every
    default-constructed layer irreproducible. ``seed=None`` falls back to
    :data:`DEFAULT_SEED` so ``ensure_rng(rng, seed)`` stays deterministic
    even for callers whose own seed parameter was left unset.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


class _InitMode(threading.local):
    deferred = False


_INIT_MODE = _InitMode()


@contextmanager
def deferred_init():
    """Skip random weight initialization inside the block (zeros instead).

    Deserialization builds a model only to immediately overwrite every
    parameter via ``load_state_dict``; drawing Glorot/orthogonal weights
    (the latter costs a QR decomposition per recurrent kernel) for throwaway
    arrays is pure waste. Thread-local, like the autograd grad mode.
    """
    prev = _INIT_MODE.deferred
    _INIT_MODE.deferred = True
    try:
        yield
    finally:
        _INIT_MODE.deferred = prev


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-l, l) with l = sqrt(6 / (fan_in + fan_out))."""
    if _INIT_MODE.deferred:
        return np.zeros(shape, dtype=np.float64)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(-l, l) with l = sqrt(6 / fan_in); suits ReLU layers."""
    if _INIT_MODE.deferred:
        return np.zeros(shape, dtype=np.float64)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initializer (used for GRU recurrent kernels)."""
    if _INIT_MODE.deferred:
        return np.zeros(shape, dtype=np.float64)
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


# `rng` keeps the uniform initializer signature so registries can call any
# initializer interchangeably; zeros is deterministic by construction.
def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:  # repro: noqa[REP016]
    return np.zeros(shape, dtype=np.float64)


def embedding_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, scale: float = 0.05
) -> np.ndarray:
    """Keras-style RandomUniform(-scale, scale) used for embedding tables."""
    if _INIT_MODE.deferred:
        return np.zeros(shape, dtype=np.float64)
    return rng.uniform(-scale, scale, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
