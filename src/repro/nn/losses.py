"""Loss functions.

The paper trains Env2Vec by minimizing Mean Squared Error
(``MSE = (1/N) Σ (y_i - y'_i)^2``, §3.1 / Appendix A.1) and additionally
reports Mean Absolute Error for evaluation (§4.1.2).
"""

from __future__ import annotations

from .tensor import Tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss", "get_loss"]


def mse_loss(predicted: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = predicted - target
    return (diff * diff).mean()


def mae_loss(predicted: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    return (predicted - target).abs().mean()


def huber_loss(predicted: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear beyond.

    Useful when occasional KPI spikes would dominate a pure MSE objective:
    the linear tail bounds each sample's gradient at ``delta``.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    diff = (predicted - target).abs()
    quadratic = (diff * diff) * 0.5
    linear = diff * delta - 0.5 * delta * delta
    # Smooth switch: min(quadratic, linear) equals the Huber loss for
    # diff >= 0 because the two branches cross exactly at diff == delta.
    mask = diff.numpy() <= delta
    combined = quadratic * Tensor(mask.astype(float)) + linear * Tensor((~mask).astype(float))
    return combined.mean()


_LOSSES = {"mse": mse_loss, "mae": mae_loss, "huber": huber_loss}


def get_loss(name: str):
    """Resolve a loss function by name (``'mse'`` or ``'mae'``)."""
    try:
        return _LOSSES[name]
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(_LOSSES)}") from None
