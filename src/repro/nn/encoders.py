"""Pluggable sequence encoders: one registry for the time-series branch.

The paper fixes the time-series branch to a single GRU over the RU-history
window (§3.1, Appendix A) and §6 sketches attention as future work. Related
work on VNF chains ("Sequential Deep Learning Architectures for Anomaly
Detection in VNF Chains", arXiv 2109.14276) shows detector quality varies
sharply across RNN variants once environments are coupled, so the branch is
worth treating as an axis rather than a constant.

A :class:`SequenceEncoder` owns everything one architecture choice implies:

- its layers and autograd ``forward`` mapping a ``(batch, timesteps,
  input_size)`` sequence to a ``(batch, output_dim)`` summary;
- its compiled-inference counterpart, registered through the standard
  :func:`repro.nn.inference.register_compiler` mechanism (consumers embed
  the plan via :func:`repro.nn.inference.compile_plan`);
- its serialization schema (:meth:`SequenceEncoder.to_config` /
  :func:`encoder_from_config`).

Encoders register by name via :func:`register_encoder`; consumers only ever
see the name. ``Env2VecModel(encoder="lstm")`` and the chained-topology
experiments iterate :func:`available_encoders` without touching a single
recurrent class — the registry is the only entry point to the GRU/LSTM/
attention layers outside ``repro.nn`` (enforced by the REP009 lint rule).

Registered out of the box:

========== =============================================================
name        architecture
========== =============================================================
gru         GRU (ReLU candidate, Appendix A), last hidden state
lstm        LSTM, last hidden state
stacked     2-layer GRU: full state sequence into a second GRU
bidi        forward GRU + time-reversed GRU, states concatenated
attention   GRU keeping all states, pooled by additive attention (§6)
lstm_attention  LSTM keeping all states, pooled by additive attention
========== =============================================================

``bidi`` is registered under ``"bidirectional"``.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .attention import AdditiveAttention
from .gru import GRU
from .inference import (
    compile_attention,
    compile_recurrent,
    register_compiler,
)
from .layers import Module
from .lstm import LSTM
from .tensor import Tensor

__all__ = [
    "SequenceEncoder",
    "register_encoder",
    "available_encoders",
    "validate_encoder_name",
    "create_encoder",
    "encoder_from_config",
    "resolve_encoder_name",
    "GRUEncoder",
    "LSTMEncoder",
    "StackedGRUEncoder",
    "BidirectionalGRUEncoder",
    "AttentionGRUEncoder",
    "AttentionLSTMEncoder",
]


class SequenceEncoder(Module):
    """Summarize a ``(batch, timesteps, input_size)`` sequence.

    Subclasses own their layers and draw initial weights from the ``rng``
    they are constructed with, in a fixed order — the seed-determinism
    contract (byte-identical same-seed campaigns) extends through every
    registered encoder.
    """

    #: registry key, set by :func:`register_encoder`.
    name: str = ""

    def __init__(self, input_size: int, hidden_size: int):
        super().__init__()
        if input_size < 1:
            raise ValueError("input_size must be >= 1")
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size

    @property
    def output_dim(self) -> int:
        """Width of the summary vector (``hidden_size`` unless overridden)."""
        return self.hidden_size

    def to_config(self) -> dict:
        """JSON-serializable construction recipe (see :func:`encoder_from_config`)."""
        return {
            "name": self.name,
            "input_size": self.input_size,
            "hidden_size": self.hidden_size,
        }

    def _check_input(self, sequence: Tensor) -> Tensor:
        sequence = sequence if isinstance(sequence, Tensor) else Tensor(sequence)
        if sequence.ndim != 3 or sequence.shape[2] != self.input_size:
            raise ValueError(
                f"expected (batch, timesteps, {self.input_size}); got shape {sequence.shape}"
            )
        return sequence


_ENCODERS: dict[str, type[SequenceEncoder]] = {}


def register_encoder(name: str):
    """Class decorator adding a :class:`SequenceEncoder` to the registry.

    The class must be constructible as ``cls(input_size, hidden_size,
    rng=rng, **config_extras)``; its compiled-inference rule is registered
    separately via :func:`repro.nn.inference.register_compiler`.
    """

    def decorator(cls: type[SequenceEncoder]) -> type[SequenceEncoder]:
        if name in _ENCODERS:
            raise ValueError(f"encoder {name!r} is already registered ({_ENCODERS[name].__name__})")
        cls.name = name
        _ENCODERS[name] = cls
        return cls

    return decorator


def available_encoders() -> tuple[str, ...]:
    """Registered encoder names, sorted."""
    return tuple(sorted(_ENCODERS))


def validate_encoder_name(name: str) -> str:
    """The single encoder-name check every consuming layer funnels through."""
    if name not in _ENCODERS:
        raise ValueError(
            f"unknown encoder {name!r}; registered encoders: "
            + ", ".join(available_encoders())
        )
    return name


def create_encoder(
    name: str,
    input_size: int,
    hidden_size: int,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> SequenceEncoder:
    """Instantiate a registered encoder by name."""
    cls = _ENCODERS[validate_encoder_name(name)]
    return cls(input_size, hidden_size, rng=rng, **kwargs)


def encoder_from_config(
    config: dict, rng: np.random.Generator | None = None
) -> SequenceEncoder:
    """Rebuild an encoder from :meth:`SequenceEncoder.to_config` output."""
    config = dict(config)
    try:
        name = config.pop("name")
        input_size = config.pop("input_size")
        hidden_size = config.pop("hidden_size")
    except KeyError as error:
        raise ValueError(f"encoder config is missing {error.args[0]!r}") from None
    return create_encoder(name, input_size, hidden_size, rng=rng, **config)


#: deprecated-alias mapping: (recurrent_unit, use_attention) -> encoder name.
_ALIAS_ENCODERS = {
    ("gru", False): "gru",
    ("gru", True): "attention",
    ("lstm", False): "lstm",
    ("lstm", True): "lstm_attention",
}


def resolve_encoder_name(
    encoder: str | None = None,
    recurrent_unit: str | None = None,
    use_attention: bool | None = None,
) -> str:
    """Resolve ``encoder=`` and its deprecated aliases to one registry name.

    ``recurrent_unit``/``use_attention`` predate the registry and remain
    supported: ``recurrent_unit="lstm"`` means ``encoder="lstm"`` and
    ``use_attention=True`` selects the attention-pooled variant. Passing
    both the new and the old spelling is ambiguous and rejected.
    """
    if encoder is not None:
        if recurrent_unit is not None or use_attention:
            raise ValueError(
                "pass encoder=... or the deprecated recurrent_unit/use_attention "
                "aliases, not both"
            )
        return validate_encoder_name(encoder)
    unit = "gru" if recurrent_unit is None else recurrent_unit
    name = _ALIAS_ENCODERS.get((unit, bool(use_attention)))
    if name is None:
        # An unmapped recurrent_unit that names a registered encoder is
        # accepted as a direct alias — but only without use_attention.
        if not use_attention:
            return validate_encoder_name(unit)
        raise ValueError(
            f"use_attention=True is only supported with recurrent_unit 'gru' or "
            f"'lstm'; got {unit!r}"
        )
    return name


# ---------------------------------------------------------------------------
# The built-in zoo
# ---------------------------------------------------------------------------
@register_encoder("gru")
class GRUEncoder(SequenceEncoder):
    """The paper's branch: a GRU with ReLU candidate, last hidden state."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.activation = activation
        self.gru = GRU(input_size, hidden_size, activation=activation, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        return self.gru(self._check_input(sequence))

    def to_config(self) -> dict:
        return {**super().to_config(), "activation": self.activation}


@register_encoder("lstm")
class LSTMEncoder(SequenceEncoder):
    """An LSTM cell in place of the GRU, last hidden state."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.lstm = LSTM(input_size, hidden_size, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        return self.lstm(self._check_input(sequence))


@register_encoder("stacked")
class StackedGRUEncoder(SequenceEncoder):
    """Two GRU layers: the full state sequence feeds a second GRU."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.activation = activation
        self.lower = GRU(
            input_size, hidden_size, activation=activation, return_sequences=True, rng=rng
        )
        self.upper = GRU(hidden_size, hidden_size, activation=activation, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        return self.upper(self.lower(self._check_input(sequence)))

    def to_config(self) -> dict:
        return {**super().to_config(), "activation": self.activation}


@register_encoder("bidirectional")
class BidirectionalGRUEncoder(SequenceEncoder):
    """Forward GRU + time-reversed GRU, last states concatenated.

    ``output_dim`` is ``2 * hidden_size``: downstream combination layers
    must size themselves from :attr:`output_dim`, never ``hidden_size``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.activation = activation
        self.forward_gru = GRU(input_size, hidden_size, activation=activation, rng=rng)
        self.backward_gru = GRU(input_size, hidden_size, activation=activation, rng=rng)

    @property
    def output_dim(self) -> int:
        return 2 * self.hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        sequence = self._check_input(sequence)
        reversed_sequence = sequence[:, ::-1, :]
        return Tensor.concat(
            [self.forward_gru(sequence), self.backward_gru(reversed_sequence)], axis=1
        )

    def to_config(self) -> dict:
        return {**super().to_config(), "activation": self.activation}


@register_encoder("attention")
class AttentionGRUEncoder(SequenceEncoder):
    """§6's extension: keep all GRU states, pool with additive attention."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        activation: str = "relu",
        attention_size: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.activation = activation
        self.gru = GRU(
            input_size, hidden_size, activation=activation, return_sequences=True, rng=rng
        )
        self.attention = AdditiveAttention(hidden_size, attention_size, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        return self.attention(self.gru(self._check_input(sequence)))

    def to_config(self) -> dict:
        return {
            **super().to_config(),
            "activation": self.activation,
            "attention_size": self.attention.attention_size,
        }


@register_encoder("lstm_attention")
class AttentionLSTMEncoder(SequenceEncoder):
    """LSTM keeping all states, pooled by additive attention."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        attention_size: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(input_size, hidden_size)
        rng = initializers.ensure_rng(rng)
        self.lstm = LSTM(input_size, hidden_size, return_sequences=True, rng=rng)
        self.attention = AdditiveAttention(hidden_size, attention_size, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        return self.attention(self.lstm(self._check_input(sequence)))

    def to_config(self) -> dict:
        return {
            **super().to_config(),
            "attention_size": self.attention.attention_size,
        }


# ---------------------------------------------------------------------------
# Compiled-inference rules — each encoder's tape-free counterpart
# ---------------------------------------------------------------------------
@register_compiler(GRUEncoder)
def _compile_gru_encoder(module: GRUEncoder, dtype: np.dtype):
    run = compile_recurrent(module.gru, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        return run(np.asarray(sequence, dtype=dtype))

    return forward


@register_compiler(LSTMEncoder)
def _compile_lstm_encoder(module: LSTMEncoder, dtype: np.dtype):
    run = compile_recurrent(module.lstm, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        return run(np.asarray(sequence, dtype=dtype))

    return forward


@register_compiler(StackedGRUEncoder)
def _compile_stacked_encoder(module: StackedGRUEncoder, dtype: np.dtype):
    lower = compile_recurrent(module.lower, dtype)
    upper = compile_recurrent(module.upper, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        return upper(lower(np.asarray(sequence, dtype=dtype)))

    return forward


@register_compiler(BidirectionalGRUEncoder)
def _compile_bidirectional_encoder(module: BidirectionalGRUEncoder, dtype: np.dtype):
    run_forward = compile_recurrent(module.forward_gru, dtype)
    run_backward = compile_recurrent(module.backward_gru, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        sequence = np.asarray(sequence, dtype=dtype)
        return np.concatenate(
            [run_forward(sequence), run_backward(sequence[:, ::-1, :])], axis=1
        )

    return forward


@register_compiler(AttentionGRUEncoder)
def _compile_attention_gru_encoder(module: AttentionGRUEncoder, dtype: np.dtype):
    run = compile_recurrent(module.gru, dtype)
    pool = compile_attention(module.attention, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        return pool(run(np.asarray(sequence, dtype=dtype)))

    return forward


@register_compiler(AttentionLSTMEncoder)
def _compile_attention_lstm_encoder(module: AttentionLSTMEncoder, dtype: np.dtype):
    run = compile_recurrent(module.lstm, dtype)
    pool = compile_attention(module.attention, dtype)

    def forward(sequence: np.ndarray) -> np.ndarray:
        return pool(run(np.asarray(sequence, dtype=dtype)))

    return forward
