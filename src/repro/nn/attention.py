"""Additive (Bahdanau-style) attention over a hidden-state sequence.

§6 of the paper names attention [3, 42] as a future-work direction: "This
could be useful to learn relationships between metric values from previous
timesteps." This module implements that extension: instead of summarizing
the RU history with the GRU's *last* hidden state, the model attends over
*all* hidden states

    e_t   = v^T tanh(W h_t)        (alignment score per timestep)
    a     = softmax(e)             (attention weights)
    v_ts  = Σ_t a_t h_t            (attended summary)

so timesteps that matter for the prediction — e.g. the onset of a load
ramp several steps back — can dominate the summary regardless of recency.
Enabled in :class:`repro.core.model.Env2VecModel` via
``use_attention=True`` and evaluated by
``benchmarks/bench_ablation_attention.py``.
"""

from __future__ import annotations

import threading

import numpy as np

from . import init as initializers
from . import ops
from .layers import Module, Parameter
from .tensor import Tensor, apply_op

__all__ = ["AdditiveAttention"]


class AdditiveAttention(Module):
    """Pool a ``(batch, timesteps, hidden)`` sequence into ``(batch, hidden)``."""

    def __init__(
        self,
        hidden_size: int,
        attention_size: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        rng = initializers.ensure_rng(rng)
        attention_size = attention_size if attention_size is not None else hidden_size
        if attention_size < 1:
            raise ValueError("attention_size must be >= 1")
        self.hidden_size = hidden_size
        self.attention_size = attention_size
        self.projection = Parameter(
            initializers.glorot_uniform((hidden_size, attention_size), rng), name="projection"
        )
        self.context = Parameter(
            initializers.glorot_uniform((attention_size, 1), rng), name="context"
        )
        # Last-forward weights are kept *per thread*: the parallel campaign
        # executor's workers share one model, and a single mutable buffer
        # would let worker A read the weights of worker B's coalesced batch.
        # A plain dict keyed by thread id (assignment is atomic under the
        # GIL) rather than threading.local so the module stays deepcopy-able.
        self._weights_by_thread: dict[int, np.ndarray] = {}

    def forward(self, sequence: Tensor) -> Tensor:
        out, _ = self.attend(sequence)
        return out

    def attend(self, sequence: Tensor) -> tuple[Tensor, np.ndarray]:
        """Forward pass returning ``(pooled, weights)``.

        The returned ``(batch, timesteps)`` weights belong to *this* call —
        the race-free way to inspect attention; :attr:`last_weights` is the
        convenience accessor for single-threaded analysis code.
        """
        if sequence.ndim != 3 or sequence.shape[2] != self.hidden_size:
            raise ValueError(
                f"expected (batch, timesteps, {self.hidden_size}); got shape {sequence.shape}"
            )
        sequence = sequence if isinstance(sequence, Tensor) else Tensor(sequence)
        out, cache = ops.attention_forward(
            sequence.data, self.projection.data, self.context.data
        )
        weights = cache["weights"].copy()
        self._weights_by_thread[threading.get_ident()] = weights
        pooled = apply_op(
            (sequence, self.projection, self.context),
            out,
            lambda grad: ops.attention_backward(grad, cache),
        )
        return pooled, weights

    @property
    def last_weights(self) -> np.ndarray:
        """Attention weights from this thread's most recent forward (analysis).

        Each thread sees only its own forwards; for an explicit per-call
        handle (immune even to reentrant use) call :meth:`attend`.
        """
        weights = self._weights_by_thread.get(threading.get_ident())
        if weights is None:
            raise RuntimeError("attention has not been applied yet (in this thread)")
        return weights
