"""Additive (Bahdanau-style) attention over a hidden-state sequence.

§6 of the paper names attention [3, 42] as a future-work direction: "This
could be useful to learn relationships between metric values from previous
timesteps." This module implements that extension: instead of summarizing
the RU history with the GRU's *last* hidden state, the model attends over
*all* hidden states

    e_t   = v^T tanh(W h_t)        (alignment score per timestep)
    a     = softmax(e)             (attention weights)
    v_ts  = Σ_t a_t h_t            (attended summary)

so timesteps that matter for the prediction — e.g. the onset of a load
ramp several steps back — can dominate the summary regardless of recency.
Enabled in :class:`repro.core.model.Env2VecModel` via
``use_attention=True`` and evaluated by
``benchmarks/bench_ablation_attention.py``.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from . import ops
from .layers import Module, Parameter
from .tensor import Tensor, apply_op

__all__ = ["AdditiveAttention"]


class AdditiveAttention(Module):
    """Pool a ``(batch, timesteps, hidden)`` sequence into ``(batch, hidden)``."""

    def __init__(
        self,
        hidden_size: int,
        attention_size: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        rng = initializers.ensure_rng(rng)
        attention_size = attention_size if attention_size is not None else hidden_size
        if attention_size < 1:
            raise ValueError("attention_size must be >= 1")
        self.hidden_size = hidden_size
        self.attention_size = attention_size
        self.projection = Parameter(
            initializers.glorot_uniform((hidden_size, attention_size), rng), name="projection"
        )
        self.context = Parameter(
            initializers.glorot_uniform((attention_size, 1), rng), name="context"
        )
        self._last_weights: np.ndarray | None = None

    def forward(self, sequence: Tensor) -> Tensor:
        if sequence.ndim != 3 or sequence.shape[2] != self.hidden_size:
            raise ValueError(
                f"expected (batch, timesteps, {self.hidden_size}); got shape {sequence.shape}"
            )
        sequence = sequence if isinstance(sequence, Tensor) else Tensor(sequence)
        out, cache = ops.attention_forward(
            sequence.data, self.projection.data, self.context.data
        )
        self._last_weights = cache["weights"].copy()
        return apply_op(
            (sequence, self.projection, self.context),
            out,
            lambda grad: ops.attention_backward(grad, cache),
        )

    @property
    def last_weights(self) -> np.ndarray:
        """Attention weights from the most recent forward pass (analysis)."""
        if self._last_weights is None:
            raise RuntimeError("attention has not been applied yet")
        return self._last_weights
