"""Gradient-descent optimizers.

The paper uses the Adam update rule [Kingma & Ba 2014] to train Env2Vec
(Appendix A.1). SGD (with optional momentum) is provided as a simpler
alternative used in tests.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_gradients"]


def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm. Standard protection for recurrent models
    whose backpropagated-through-time gradients can occasionally explode.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list.

    ``weight_decay`` applies decoupled L2 regularization (AdamW-style for
    Adam): weights shrink by ``lr * weight_decay * w`` each step,
    independent of the gradient moments.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def _apply_weight_decay(self) -> None:
        if self.weight_decay:
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.data -= self.lr * self.weight_decay * parameter.data

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._apply_weight_decay()
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * param.grad
                param.data += velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._apply_weight_decay()
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
