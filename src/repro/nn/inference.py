"""Tape-free inference engine: compile a fitted Module into pure numpy.

Training needs the autograd tape; serving does not. The paper's production
loop (§3 steps 3–5) runs the trained Env2Vec model continuously over
streaming testbed metrics, so every wasted allocation on the predict path
is paid once per timestep per testbed. This module "compiles" a fitted
:class:`~repro.nn.layers.Module` into an :class:`InferenceModel`:

- weights are snapshotted as contiguous arrays (optionally ``float32``),
  with recurrent gate kernels fused into single matmuls
  (:func:`repro.nn.ops.fuse_gru_weights` / ``fuse_lstm_weights``);
- dropout is elided entirely (it is already a no-op in eval mode — here it
  doesn't even appear in the compiled plan);
- no :class:`~repro.nn.tensor.Tensor` objects, backward closures, or graph
  bookkeeping exist anywhere on the path — each forward is plain vectorized
  numpy over the :mod:`repro.nn.ops` kernels;
- :meth:`InferenceModel.assert_close` checks numerical parity against the
  autograd forward, so a compiled model can prove it matches the weights it
  was built from.

Model-specific compile rules live next to the model classes (e.g.
:mod:`repro.core.model` registers the Env2Vec architecture) and plug in via
:func:`register_compiler`. Matching is by *exact* type: a subclass that
overrides ``forward`` must register its own rule, otherwise compilation
refuses rather than silently using the parent's plan.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from . import ops
from ..obs import LATENCY_BUCKETS, get_observability
from .attention import AdditiveAttention
from .gru import GRU
from .layers import Dense, Dropout, Sequential
from .lstm import LSTM
from .tensor import no_grad

_OBS = get_observability()
_REGISTRY = _OBS.registry
# One slot read per forward instead of a property call — this is the most
# frequently executed enabled check in the repo (once per predict batch).
_ENABLED = _REGISTRY.enabled_cell
_clock = time.perf_counter
_H_COMPILE = _OBS.histogram(
    "repro_nn_compile_seconds",
    "Time to compile a fitted module into a tape-free inference plan.",
    buckets=LATENCY_BUCKETS,
)
_H_PREDICT = _OBS.histogram(
    "repro_nn_predict_batch_seconds",
    "Per-batch forward latency of compiled inference models.",
    buckets=LATENCY_BUCKETS,
)
_M_CACHE_HITS = _OBS.counter(
    "repro_env_cache_hits_total", "Env-embedding LRU row-cache hits."
)
_M_CACHE_MISSES = _OBS.counter(
    "repro_env_cache_misses_total", "Env-embedding LRU row-cache misses."
)

__all__ = [
    "FLOAT32_ATOL",
    "UnsupportedModuleError",
    "InferenceModel",
    "EmbeddingRowCache",
    "CompiledDense",
    "compile_module",
    "compile_plan",
    "compile_recurrent",
    "compile_attention",
    "register_compiler",
    "snapshot",
]


#: Documented parity bound for ``float32`` engines: max |compiled_f32 −
#: autograd_f64| observed across the encoder zoo and trained Env2Vec
#: models is ≈1e-6 (single-precision rounding through ~20 elementwise/
#: GEMM ops, plus the composed-``exp`` sigmoid on the float32 path); the
#: bound keeps two orders of magnitude of headroom. ``float64`` engines
#: stay at the ≤1e-10 contract.
FLOAT32_ATOL = 1e-4


class UnsupportedModuleError(TypeError):
    """No compile rule is registered for the module's exact type."""


def snapshot(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Contiguous, dtype-converted copy of a parameter — the engine never
    aliases live training weights, so an optimizer step cannot corrupt a
    compiled model. (``ascontiguousarray`` alone would alias when the input
    is already contiguous in the right dtype, hence the explicit copy.)"""
    return np.array(array, dtype=dtype, order="C", copy=True)


class CompiledDense:
    """``activation(x @ W + b)`` over snapshotted weights."""

    __slots__ = ("weight", "bias", "act", "_act_fn")

    def __init__(self, dense: Dense, dtype: np.dtype):
        self.weight = snapshot(dense.weight.data, dtype)
        self.bias = snapshot(dense.bias.data, dtype)
        self.act = dense.activation_name
        # Resolve the activation once — the per-call string-compare chain
        # in activation_inplace is measurable at batch size 1.
        self._act_fn = ops._resolve_act(self.act)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # The GEMM result is a throwaway: fold the bias add and the
        # activation into it in place (bitwise identical to the naive
        # ``activation(x @ W + b)``, one allocation instead of three).
        pre = x @ self.weight
        pre += self.bias
        if self._act_fn is not None:
            return self._act_fn(pre)
        return pre


def compile_recurrent(module: GRU | LSTM, dtype: np.dtype) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a GRU/LSTM layer into a fused tape-free sequence runner."""
    if isinstance(module, GRU):
        cell = module.cell
        fused = ops.fuse_gru_weights(
            cell.w_z.data, cell.u_z.data, cell.b_z.data,
            cell.w_r.data, cell.u_r.data, cell.b_r.data,
            cell.w_h.data, cell.u_h.data, cell.b_h.data,
            dtype=dtype,
        )
        act = cell.activation_name
        return_sequences = module.return_sequences

        def run_gru(sequence: np.ndarray) -> np.ndarray:
            return ops.gru_sequence(sequence, fused, act, return_sequences)

        return run_gru
    if isinstance(module, LSTM):
        cell = module.cell
        fused = ops.fuse_lstm_weights(
            cell.w_i.data, cell.u_i.data, cell.b_i.data,
            cell.w_f.data, cell.u_f.data, cell.b_f.data,
            cell.w_o.data, cell.u_o.data, cell.b_o.data,
            cell.w_g.data, cell.u_g.data, cell.b_g.data,
            dtype=dtype,
        )
        return_sequences = module.return_sequences

        def run_lstm(sequence: np.ndarray) -> np.ndarray:
            return ops.lstm_sequence(sequence, fused, return_sequences)

        return run_lstm
    raise UnsupportedModuleError(f"not a recurrent layer: {type(module).__name__}")


def compile_attention(
    module: AdditiveAttention, dtype: np.dtype
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile additive attention pooling (weights snapshotted)."""
    projection = snapshot(module.projection.data, dtype)
    context = snapshot(module.context.data, dtype)

    def run_attention(sequence: np.ndarray) -> np.ndarray:
        return ops.attention_pool(sequence, projection, context)

    return run_attention


class EmbeddingRowCache:
    """LRU cache of concatenated environment-embedding rows ``C``.

    Environments repeat for every timestep of a test execution (and across
    executions of the same build chain), so the per-field gathers and the
    concatenation ``C = [ec^1, ..., ec^k]`` (eq. 1) are recomputed millions
    of times on identical id tuples. Caching the finished row keyed by the
    env-id tuple turns the embedding branch of a streaming prediction into
    one dict hit; with the Hadamard head the whole environment side of
    eq. 2 then costs a single cached gather + dot per step.

    Cached rows are handed out by reference, so they are marked
    non-writeable before they enter the cache: a caller mutating a
    returned row would otherwise silently corrupt every future prediction
    for that environment. Mutation attempts raise ``ValueError`` instead.
    The single-row fast path returns a read-only view; the multi-row path
    fancy-indexes into a fresh (writable) batch. Lookups are guarded by a
    per-cache lock so the parallel campaign executor's worker threads can
    share one compiled engine.
    """

    def __init__(self, tables: list[np.ndarray], dtype: np.dtype, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.tables = [snapshot(table, dtype) for table in tables]
        self.dim = int(sum(table.shape[1] for table in self.tables))
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        # Mixed-radix multipliers: one int64 composite key per id row, so
        # the batch path can dedup with a single vectorized np.unique
        # instead of hashing every row through a python loop.
        self._sizes = np.array([table.shape[0] for table in self.tables], dtype=np.int64)
        radix = np.ones(len(self.tables), dtype=np.int64)
        for j in range(len(self.tables) - 2, -1, -1):
            radix[j] = radix[j + 1] * self._sizes[j + 1]
        self._radix = radix

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def _row(self, key: tuple[int, ...]) -> np.ndarray:
        """One read-only cached row; takes the cache lock per lookup."""
        if key and min(key) < 0:
            # numpy would silently wrap a negative index; and under the
            # batch path's composite keys a negative id could alias a
            # valid tuple, so it must never reach the gather.
            raise IndexError(f"negative environment id in {key}")
        with self._lock:
            row = self._cache.get(key)
            if row is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return row
            self.misses += 1
            row = np.concatenate([table[i] for table, i in zip(self.tables, key)])
            row.setflags(write=False)
            self._cache[key] = row
            if len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
            return row

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """``(n, n_fields)`` id matrix -> ``(n, dim)`` concatenated rows.

        The batch path is vectorized over the whole batch: each row is
        collapsed to one mixed-radix int64 composite key, a single
        ``np.unique`` dedups them, and only the distinct keys touch the
        LRU (same hit/miss accounting as row-at-a-time lookup — one
        touch per distinct environment per batch). A 256-row batch of
        repeating environments costs one ``np.unique`` plus a handful of
        dict operations instead of 256; the common serve/campaign case of
        a single-environment batch skips even the sort. Out-of-range ids
        raise ``IndexError`` from the gather itself (negative in
        :meth:`_row`, too-large from the table indexing).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] != len(self.tables):
            raise ValueError(f"expected ids of shape (n, {len(self.tables)}); got {ids.shape}")
        if len(ids) == 0:
            return np.empty((0, self.dim), dtype=self.tables[0].dtype)
        if len(ids) == 1:  # streaming fast path: one tuple hash
            return self._row(tuple(ids[0].tolist()))[None, :]
        if ids[0, 0] == ids[-1, 0] and bool((ids == ids[0]).all()):
            # Single-environment batch (chain-affinity sharding and serve
            # micro-batches produce these constantly): one LRU touch, one
            # broadcast copy — no composite keys, no sort.
            out = np.empty((len(ids), self.dim), dtype=self.tables[0].dtype)
            np.copyto(out, self._row(tuple(ids[0].tolist())))
            return out
        keys = ids @ self._radix
        _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
        gathered = [self._row(tuple(ids[i].tolist())) for i in first]
        return np.asarray(gathered)[inverse]


_COMPILERS: dict[type, Callable[[object, np.dtype], Callable[..., np.ndarray]]] = {}


def register_compiler(cls: type):
    """Register a compile rule: ``fn(module, dtype) -> forward_fn``.

    ``forward_fn`` takes the same keyword arrays as the module's ``forward``
    and returns a numpy array. Attributes set on ``forward_fn`` (e.g. an
    ``env_cache``) are surfaced on the :class:`InferenceModel`.
    """

    def decorator(fn):
        _COMPILERS[cls] = fn
        return fn

    return decorator


class InferenceModel:
    """A compiled, tape-free forward for a fitted module.

    Every kernel in the compiled plan is row-wise: predictions for a row
    do not depend on which other rows share the batch. Callers that
    coalesce traffic (``predict_many``, the ``repro.serve``
    micro-batcher) rely on this to keep batched results bitwise equal to
    per-request ones.
    """

    def __init__(self, forward_fn: Callable[..., np.ndarray], source, dtype: np.dtype):
        self._forward = forward_fn
        self._source = source
        self.dtype = dtype
        #: free-form tags owners attach to a compiled engine — the serve
        #: warm pool stamps the model-store version it was compiled for,
        #: so operators can tell resident engines apart in diagnostics.
        self.meta: dict = {}
        #: the Env2Vec engine's embedding-row cache, if the plan has one
        self.env_cache: EmbeddingRowCache | None = getattr(forward_fn, "env_cache", None)
        # The row cache counts its own hits/misses as plain ints (the per-
        # lookup path stays untouched); the engine publishes the deltas to
        # the global counters after each instrumented forward.
        self._cache_hits_seen = 0
        self._cache_misses_seen = 0

    def __call__(self, **inputs) -> np.ndarray:
        if not _ENABLED.on:
            return self._forward(**inputs)
        start = _clock()
        out = self._forward(**inputs)
        _H_PREDICT.observe(_clock() - start)
        cache = self.env_cache
        if cache is not None:
            # Sync only non-zero deltas: a warm streaming loop advances just
            # the hit count, so this is usually one inc, not two.
            hits = cache.hits
            if hits != self._cache_hits_seen:
                _M_CACHE_HITS.inc(hits - self._cache_hits_seen)
                self._cache_hits_seen = hits
            misses = cache.misses
            if misses != self._cache_misses_seen:
                _M_CACHE_MISSES.inc(misses - self._cache_misses_seen)
                self._cache_misses_seen = misses
        return out

    def predict(self, inputs: Mapping[str, np.ndarray], batch_size: int | None = None) -> np.ndarray:
        """Vectorized prediction, optionally chunked to bound peak memory.

        Zero-row inputs are answered by one zero-row forward (every
        compiled kernel is shape-polymorphic down to ``n == 0``), so a
        chunked call never reaches ``np.concatenate([])``. An empty
        *mapping* is a caller bug and raises ``ValueError``.
        """
        if not inputs:
            raise ValueError("inputs must contain at least one named array")
        if batch_size is None:
            return self(**inputs)
        n = len(next(iter(inputs.values())))
        if n == 0:
            return self(**inputs)
        outputs = [
            self(**{key: value[start : start + batch_size] for key, value in inputs.items()})
            for start in range(0, n, batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict_many(
        self,
        inputs_list: list[Mapping[str, np.ndarray]],
        batch_size: int | None = None,
    ) -> list[np.ndarray]:
        """Coalesce several aligned input dicts into batched forwards.

        The parallel campaign executor scores many executions that share
        one model version; issuing one forward per execution wastes the
        fixed per-call overhead (dispatch, instrumentation, small-matmul
        setup). This concatenates the inputs row-wise, runs them through
        :meth:`predict`, and splits the output back per execution. Every
        kernel on the compiled path is row-wise, so the split results are
        bitwise identical to per-execution ``predict`` calls — the
        byte-identical merge contract of ``repro.parallel`` relies on it.
        """
        if not inputs_list:
            return []
        keys = tuple(inputs_list[0])
        if not keys:
            raise ValueError("inputs must contain at least one named array")
        for inputs in inputs_list:
            if tuple(inputs) != keys:
                raise ValueError(
                    f"cannot coalesce inputs with differing keys: {tuple(inputs)} vs {keys}"
                )
        if len(inputs_list) == 1:
            return [self.predict(inputs_list[0], batch_size=batch_size)]
        lengths = [len(next(iter(inputs.values()))) for inputs in inputs_list]
        merged = {
            key: np.concatenate([np.asarray(inputs[key]) for inputs in inputs_list], axis=0)
            for key in keys
        }
        out = self.predict(merged, batch_size=batch_size)
        pieces, start = [], 0
        for n in lengths:
            pieces.append(out[start : start + n])
            start += n
        return pieces

    def assert_close(self, inputs: Mapping[str, np.ndarray], atol: float | None = None) -> float:
        """Check parity against the source module's autograd forward.

        Runs the original module in eval mode under ``no_grad`` and compares
        elementwise. Returns the max absolute difference; raises
        ``AssertionError`` beyond ``atol``. The default tolerance follows
        the engine dtype: ``1e-10`` for ``float64`` (the bitwise-faithful
        serving default), :data:`FLOAT32_ATOL` for ``float32`` engines.
        """
        if atol is None:
            atol = 1e-10 if self.dtype == np.float64 else FLOAT32_ATOL
        compiled = np.asarray(self._forward(**inputs), dtype=np.float64)
        was_training = getattr(self._source, "training", False)
        self._source.eval()
        try:
            with no_grad():
                reference = self._source(**inputs).numpy()
        finally:
            if was_training:
                self._source.train()
        max_err = float(np.max(np.abs(compiled - reference))) if compiled.size else 0.0
        if max_err > atol:
            raise AssertionError(
                f"compiled inference diverges from autograd forward: "
                f"max |Δ| = {max_err:.3e} > atol = {atol:.1e}"
            )
        return max_err


def compile_plan(module, dtype=np.float64) -> Callable[..., np.ndarray]:
    """The registered compile rule's raw forward closure, no engine wrapper.

    This is how one module's plan embeds inside another's: the Env2Vec
    compile rule dispatches its time-series branch through the registry
    (``compile_plan(model.encoder, dtype)``) instead of special-casing
    recurrent/attention layer types. Raises
    :class:`UnsupportedModuleError` when no rule is registered for the
    module's exact type (subclasses may override ``forward``, so they are
    deliberately not matched through the MRO).
    """
    dtype = np.dtype(dtype)
    compiler = _COMPILERS.get(type(module))
    if compiler is None:
        raise UnsupportedModuleError(
            f"no inference compiler registered for {type(module).__name__}"
        )
    return compiler(module, dtype)


def compile_module(module, dtype=np.float64) -> InferenceModel:
    """Compile a fitted module into an :class:`InferenceModel`.

    Raises :class:`UnsupportedModuleError` when no rule is registered for
    the module's exact type (see :func:`compile_plan`).
    """
    dtype = np.dtype(dtype)
    start = time.perf_counter()
    engine = InferenceModel(compile_plan(module, dtype), module, dtype)
    _H_COMPILE.observe(time.perf_counter() - start)
    return engine


@register_compiler(Dense)
def _compile_dense(module: Dense, dtype: np.dtype):
    layer = CompiledDense(module, dtype)

    def forward(x: np.ndarray) -> np.ndarray:
        return layer(np.asarray(x, dtype=dtype))

    return forward


@register_compiler(Sequential)
def _compile_sequential(module: Sequential, dtype: np.dtype):
    steps = []
    for sub in module.modules:
        if type(sub) is Dropout:  # eval-mode identity: elide from the plan
            continue
        if type(sub) is Dense:
            steps.append(CompiledDense(sub, dtype))
            continue
        raise UnsupportedModuleError(
            f"Sequential contains uncompilable layer {type(sub).__name__}"
        )

    def forward(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=dtype)
        for step in steps:
            x = step(x)
        return x

    return forward
