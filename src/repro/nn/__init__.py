"""A from-scratch deep-learning stack (autograd, layers, GRU, training).

This package substitutes for Keras/TensorFlow, which the paper uses but
which are unavailable offline. It is layered as three tiers:

- :mod:`repro.nn.ops` — pure numpy forward/backward kernels, no tape;
- the autograd tier — :class:`Tensor` + layer classes that run the ops
  kernels and attach gradients as fused tape nodes (training math);
- :mod:`repro.nn.inference` — a tape-free engine that compiles a fitted
  module into contiguous-weight numpy closures (serving math).

Plus everything around them: MSE/MAE losses, the Adam optimizer, a
mini-batch training loop with early stopping, and model serialization.
"""

from . import ops
from .attention import AdditiveAttention
from .encoders import (
    SequenceEncoder,
    available_encoders,
    create_encoder,
    encoder_from_config,
    register_encoder,
    resolve_encoder_name,
    validate_encoder_name,
)
from .gru import GRU, GRUCell
from .inference import (
    EmbeddingRowCache,
    InferenceModel,
    UnsupportedModuleError,
    compile_module,
    compile_plan,
    register_compiler,
)
from .init import deferred_init, embedding_uniform, glorot_uniform, he_uniform, orthogonal, zeros
from .layers import ACTIVATIONS, Dense, Dropout, Embedding, Module, Parameter, Sequential
from .losses import get_loss, huber_loss, mae_loss, mse_loss
from .lstm import LSTM, LSTMCell
from .optim import SGD, Adam, Optimizer, clip_gradients
from .serialize import (
    load_encoder_bytes,
    load_model_bytes,
    load_state,
    save_encoder_bytes,
    save_model_bytes,
    save_state,
)
from .tensor import Tensor, apply_op, is_grad_enabled, no_grad
from .training import EarlyStopping, ReduceLROnPlateau, Trainer, TrainingDiverged, TrainingHistory

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "apply_op",
    "ops",
    "InferenceModel",
    "EmbeddingRowCache",
    "UnsupportedModuleError",
    "compile_module",
    "compile_plan",
    "register_compiler",
    "SequenceEncoder",
    "register_encoder",
    "available_encoders",
    "validate_encoder_name",
    "create_encoder",
    "encoder_from_config",
    "resolve_encoder_name",
    "save_encoder_bytes",
    "load_encoder_bytes",
    "deferred_init",
    "Module",
    "Parameter",
    "Dense",
    "Dropout",
    "Embedding",
    "Sequential",
    "ACTIVATIONS",
    "GRU",
    "GRUCell",
    "AdditiveAttention",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "get_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_gradients",
    "LSTM",
    "LSTMCell",
    "Trainer",
    "TrainingDiverged",
    "TrainingHistory",
    "EarlyStopping",
    "ReduceLROnPlateau",
    "save_state",
    "load_state",
    "save_model_bytes",
    "load_model_bytes",
    "glorot_uniform",
    "he_uniform",
    "orthogonal",
    "zeros",
    "embedding_uniform",
]
