"""A from-scratch deep-learning stack (autograd, layers, GRU, training).

This package substitutes for Keras/TensorFlow, which the paper uses but
which are unavailable offline. It provides exactly the pieces the Env2Vec
architecture needs: a reverse-mode autograd engine over numpy, Dense /
Embedding / Dropout layers, the GRU of the paper's Appendix A, MSE/MAE
losses, the Adam optimizer, a mini-batch training loop with early stopping,
and model serialization.
"""

from .attention import AdditiveAttention
from .gru import GRU, GRUCell
from .init import embedding_uniform, glorot_uniform, he_uniform, orthogonal, zeros
from .layers import ACTIVATIONS, Dense, Dropout, Embedding, Module, Parameter, Sequential
from .losses import get_loss, huber_loss, mae_loss, mse_loss
from .lstm import LSTM, LSTMCell
from .optim import SGD, Adam, Optimizer, clip_gradients
from .serialize import load_model_bytes, load_state, save_model_bytes, save_state
from .tensor import Tensor, is_grad_enabled, no_grad
from .training import EarlyStopping, ReduceLROnPlateau, Trainer, TrainingHistory

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Dense",
    "Dropout",
    "Embedding",
    "Sequential",
    "ACTIVATIONS",
    "GRU",
    "GRUCell",
    "AdditiveAttention",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "get_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_gradients",
    "LSTM",
    "LSTMCell",
    "Trainer",
    "TrainingHistory",
    "EarlyStopping",
    "ReduceLROnPlateau",
    "save_state",
    "load_state",
    "save_model_bytes",
    "load_model_bytes",
    "glorot_uniform",
    "he_uniform",
    "orthogonal",
    "zeros",
    "embedding_uniform",
]
