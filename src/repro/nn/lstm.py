"""Long short-term memory cells — the alternative recurrent unit.

The paper chose GRUs for the RU-history branch (§3.1) citing their success
in recommender systems and time-series forecasting, but did not compare
against LSTM, the other standard gated RNN. This module provides an LSTM
with the classic formulation

    i_t = sigmoid(W^(i) x_t + U^(i) h_{t-1} + b_i)     (input gate)
    f_t = sigmoid(W^(f) x_t + U^(f) h_{t-1} + b_f)     (forget gate)
    o_t = sigmoid(W^(o) x_t + U^(o) h_{t-1} + b_o)     (output gate)
    g_t = tanh(W^(g) x_t + U^(g) h_{t-1} + b_g)        (candidate)
    c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t                    (cell state)
    h_t = o_t ⊙ tanh(c_t)                              (hidden state)

so the design choice can be ablated
(``benchmarks/bench_ablation_recurrent.py``). The forget-gate bias is
initialized to 1, the standard trick that eases gradient flow early in
training.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from . import ops
from .layers import Module, Parameter
from .tensor import Tensor, apply_op

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step on ``(batch, input_size)`` tensors."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = initializers.ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in ("i", "f", "o", "g"):
            setattr(
                self,
                f"w_{gate}",
                Parameter(initializers.glorot_uniform((input_size, hidden_size), rng), name=f"w_{gate}"),
            )
            setattr(
                self,
                f"u_{gate}",
                Parameter(initializers.orthogonal((hidden_size, hidden_size), rng), name=f"u_{gate}"),
            )
            bias = np.ones(hidden_size) if gate == "f" else np.zeros(hidden_size)
            setattr(self, f"b_{gate}", Parameter(bias, name=f"b_{gate}"))

    def forward(self, x_t: Tensor, h_prev: Tensor, c_prev: Tensor) -> tuple[Tensor, Tensor]:
        x_t = x_t if isinstance(x_t, Tensor) else Tensor(x_t)
        h_prev = h_prev if isinstance(h_prev, Tensor) else Tensor(h_prev)
        c_prev = c_prev if isinstance(c_prev, Tensor) else Tensor(c_prev)
        h_data, c_data, cache = ops.lstm_step_forward(
            x_t.data, h_prev.data, c_prev.data,
            self.w_i.data, self.u_i.data, self.b_i.data,
            self.w_f.data, self.u_f.data, self.b_f.data,
            self.w_o.data, self.u_o.data, self.b_o.data,
            self.w_g.data, self.u_g.data, self.b_g.data,
        )
        # Two tape nodes share one kernel cache: the cell state depends on
        # the i/f/g gates, the hidden state on the output gate and c_t.
        # Gradients flowing into c_t from *both* the next timestep and h_t
        # accumulate on the c_t node before its backward runs.
        c_t = apply_op(
            (
                x_t, h_prev, c_prev,
                self.w_i, self.u_i, self.b_i,
                self.w_f, self.u_f, self.b_f,
                self.w_g, self.u_g, self.b_g,
            ),
            c_data,
            lambda grad: ops.lstm_step_backward_c(grad, cache),
        )
        h_t = apply_op(
            (x_t, h_prev, c_t, self.w_o, self.u_o, self.b_o),
            h_data,
            lambda grad: ops.lstm_step_backward_h(grad, cache),
        )
        return h_t, c_t


class LSTM(Module):
    """Runs an :class:`LSTMCell` over ``(batch, timesteps, input_size)``.

    Mirrors :class:`repro.nn.gru.GRU`'s interface so the two units are
    drop-in interchangeable inside the Env2Vec backbone.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        return_sequences: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    def forward(self, sequence: Tensor) -> Tensor:
        if sequence.ndim != 3:
            raise ValueError(f"LSTM expects (batch, timesteps, input_size); got shape {sequence.shape}")
        batch, timesteps, _ = sequence.shape
        h_t = Tensor(np.zeros((batch, self.hidden_size)))
        c_t = Tensor(np.zeros((batch, self.hidden_size)))
        states: list[Tensor] = []
        for t in range(timesteps):
            h_t, c_t = self.cell(sequence[:, t, :], h_t, c_t)
            if self.return_sequences:
                states.append(h_t)
        if self.return_sequences:
            return Tensor.stack(states, axis=1)
        return h_t
