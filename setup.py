"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so ``pip install -e .`` (PEP 660) cannot build; ``python setup.py develop``
installs an egg-link instead. Metadata lives in pyproject.toml."""
from setuptools import setup

setup()
