#!/usr/bin/env python3
"""A monitoring console session: PromQL queries + engineer reports.

Shows the observability surface around Env2Vec: test executions stream
into the TSDB (step 1), the operator explores them with PromQL exactly as
they would against Prometheus, the prediction pipeline monitors a new
build, and the final test report + alarm dashboard are rendered.

Run:  python examples/monitoring_console.py
"""

from repro.data import FEATURE_NAMES, TelecomConfig, corpus_stats, generate_telecom
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictionPipeline,
    TimeSeriesDB,
    TrainingPipeline,
    campaign_summary,
    promql_query,
)


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=10,
            n_testbeds=5,
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=12,
        )
    )
    print(corpus_stats(dataset).table())

    # Ingest everything into the TSDB.
    tsdb = TimeSeriesDB()
    registry = EMRegistry()
    collector = MetricCollector(tsdb, registry, feature_names=FEATURE_NAMES)
    record_ids = {}
    for chain in dataset.chains:
        for execution in chain.executions:
            record_ids[execution.environment] = collector.collect(execution)

    # Explore with PromQL, as an engineer would against Prometheus.
    chain = dataset.focus_chains[0]
    record_id = record_ids[chain.current.environment]
    horizon = 900.0 * chain.current.n_timesteps
    print(f"\n$ promql> cpu_usage{{env=\"{record_id}\"}}")
    (latest,) = promql_query(tsdb, f'cpu_usage{{env="{record_id}"}}', at=horizon)
    print(f"  -> {latest.value:.1f}% at t={latest.timestamp:.0f}s")
    for expression in (
        f'avg_over_time(cpu_usage{{env="{record_id}"}}[{int(2 * horizon)}s])',
        f'max_over_time(cpu_usage{{env="{record_id}"}}[{int(2 * horizon)}s])',
        f'rate(net_tx{{env="{record_id}"}}[{int(2 * horizon)}s])',
    ):
        (sample,) = promql_query(tsdb, expression, at=horizon)
        print(f"$ promql> {expression}\n  -> {sample.value:.3f}")

    # Train and monitor; render the engineer's report.
    store = ModelStore()
    TrainingPipeline(
        store, n_lags=3, model_params={"max_epochs": 30, "batch_size": 256}
    ).train(dataset.history_training_series())
    alarms = AlarmStore()
    pipeline = PredictionPipeline(store, alarms, gamma=2.5)

    print()
    for focus_chain in dataset.focus_chains:
        error_model = pipeline.calibrate(focus_chain)
        run = pipeline.run(focus_chain.current, error_model)
        print(pipeline.report(focus_chain.current, run))
        print()

    print(campaign_summary(alarms))


if __name__ == "__main__":
    main()
