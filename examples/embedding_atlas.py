#!/usr/bin/env python3
"""Explore the learned environment-embedding space (Figure 6).

Trains Env2Vec on a testing corpus, projects every environment's
concatenated embedding to 2-d with PCA, and renders an ASCII scatter where
each point is labelled with its build type — the same-type clustering of
the paper's Figure 6. Also prints nearest-neighbour environments to show
that proximity in the space tracks EM overlap.

Run:  python examples/embedding_atlas.py
"""

import numpy as np

from repro.data import TelecomConfig, generate_telecom
from repro.eval import run_embedding_pca, train_env2vec_telecom
from repro.eval.plots import ascii_scatter


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, include_rare_testbed=False, seed=5)
    )
    model = train_env2vec_telecom(dataset, fast=True)
    result = run_embedding_pca(model, dataset)

    print(
        f"{len(result.environments)} environments embedded; PCA explains "
        f"{100 * result.explained_variance_ratio.sum():.0f}% of variance in 2-d"
    )
    print(f"build-type cluster ratio (intra/inter, <1 = clustered): "
          f"{result.cluster_ratio():.3f}\n")
    print("each point is an environment, labelled by build type "
          "(S=stable, B=beta, D=debug, T=test):\n")
    print(ascii_scatter(result.coordinates, result.build_types))

    # Nearest neighbours in the full embedding space track EM overlap.
    matrix = model.embed_environments(result.environments)
    target = result.environments[0]
    distances = np.linalg.norm(matrix - matrix[0], axis=1)
    order = np.argsort(distances)[1:4]
    print(f"\nnearest neighbours of {target.as_tuple()}:")
    for index in order:
        neighbour = result.environments[index]
        print(
            f"  d={distances[index]:.3f} {neighbour.as_tuple()} "
            f"(shares {target.overlap(neighbour)}/4 EM fields)"
        )


if __name__ == "__main__":
    main()
