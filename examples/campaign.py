#!/usr/bin/env python3
"""A multi-day testing campaign: the workflow loop running over time.

Simulates what a testing organization adopting Env2Vec experiences over a
release cycle: every day each build chain executes its next software
build; the campaign monitors each execution with the latest published
model, raises alarms, masks confirmed-problematic executions out of the
training pool (workflow step 2), retrains, and republishes.

Run:  python examples/campaign.py
"""

from repro.data import TelecomConfig, generate_telecom
from repro.workflow import TestingCampaign


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=15,
            n_testbeds=6,
            n_focus=3,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=9,
        )
    )
    problem_builds = {
        execution.environment
        for chain in dataset.chains
        for execution in chain.executions
        if execution.has_performance_problem
    }
    print(
        f"corpus: {dataset.n_chains} chains, "
        f"{max(len(c) for c in dataset.chains)} release days, "
        f"{len(problem_builds)} problematic builds hidden in the stream\n"
    )

    campaign = TestingCampaign(
        gamma=3.0, model_params={"max_epochs": 25, "batch_size": 256}
    )
    for report in campaign.run(dataset):
        flagged = (
            ", ".join(f"{env.testbed}/{env.build}" for env in report.flagged_environments)
            or "-"
        )
        print(
            f"day {report.day}: {report.executions_run:2d} executions | "
            f"{report.alarms_raised:3d} alarms | flagged: {flagged} | "
            f"model v{report.model_version}"
        )

    masked = campaign.masked_environments
    caught = len(problem_builds & masked)
    print(
        f"\nend of campaign: {len(masked)} executions masked from training; "
        f"{caught}/{len(problem_builds)} ground-truth problem builds caught"
    )
    print(
        f"alarm store holds {campaign.alarm_store.count()} alarms; "
        f"model store holds {campaign.model_store.latest_version} versions"
    )


if __name__ == "__main__":
    main()
