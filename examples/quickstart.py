#!/usr/bin/env python3
"""Quickstart: train one Env2Vec model and catch a bad software build.

Generates a small synthetic VNF-testing corpus (build chains over
testbeds/SUTs/test cases, with performance problems injected into a few
current builds), trains the single Env2Vec characterization model on the
historical builds, and runs contextual anomaly detection on a current
build — printing the alarms a testing engineer would receive.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ContextualAnomalyDetector, GaussianErrorModel
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import train_env2vec_telecom

N_LAGS = 3


def main() -> None:
    # 1. A small testing corpus: 20 build chains, 3 carrying real problems.
    dataset = generate_telecom(
        TelecomConfig(n_chains=20, n_testbeds=8, n_focus=3, include_rare_testbed=False, seed=42)
    )
    print(
        f"corpus: {dataset.n_chains} build chains, "
        f"{dataset.total_timesteps():,} timesteps, "
        f"{dataset.total_ground_truth_problems()} injected performance problems"
    )

    # 2. One model for every environment, trained on historical builds only.
    model = train_env2vec_telecom(dataset, n_lags=N_LAGS, fast=True)
    print(f"trained Env2Vec: {model.model.num_parameters():,} parameters, "
          f"{model.history_.epochs_run} epochs")

    # 3. Pick a chain whose current build has injected problems.
    chain = dataset.focus_chains[0]
    env = chain.current.environment
    print(f"\nmonitoring chain {chain.key}, new build {env.build}")

    # 4. Calibrate the normal-error Gaussian on the chain's previous builds.
    errors = []
    for execution in chain.history:
        X, history, y = build_windows(execution.features, execution.cpu, N_LAGS)
        predicted = model.predict([execution.environment] * len(y), X, history)
        errors.append(predicted - y)
    error_model = GaussianErrorModel.fit(np.concatenate(errors))
    print(f"normal-error model: mu={error_model.mu:+.2f}, sigma={error_model.sigma:.2f}")

    # 5. Detect anomalies in the current build (gamma-sigma rule + 5% filter).
    X, history, y = build_windows(chain.current.features, chain.current.cpu, N_LAGS)
    predicted = model.predict([env] * len(y), X, history)
    detector = ContextualAnomalyDetector(gamma=2.0)
    report = detector.detect(predicted, y, error_model)

    print(f"\n{report.n_alarms} alarm(s) raised (gamma=2):")
    for alarm in report.alarms:
        start, end = alarm.start + N_LAGS, alarm.end + N_LAGS
        print(
            f"  timesteps [{start:3d}, {end:3d})  "
            f"peak deviation {alarm.peak_deviation:5.1f}% CPU"
        )
    truth = chain.current.anomaly_mask()[N_LAGS:]
    hits = sum(1 for a in report.alarms if truth[a.start : a.end].any())
    print(f"\nground truth: {len(chain.current.impactful_faults)} injected problems; "
          f"{hits}/{report.n_alarms} alarms overlap a real problem")


if __name__ == "__main__":
    main()
