#!/usr/bin/env python3
"""Testing a previously unseen environment by reusing embeddings (§4.3).

Blinds an entire build chain out of the training corpus — its exact
environment tuple never appears in training — then shows how Env2Vec still
monitors it: the per-field lookup tables compose the unseen environment's
embedding from values learned on *other* chains (Figure 5), and anomaly
detection runs with a self-calibrated error distribution.

Run:  python examples/unseen_environment.py
"""

import numpy as np

from repro.core import (
    ContextualAnomalyDetector,
    EnvironmentVocabulary,
    blind_chains,
    composable,
    field_coverage,
)
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import train_env2vec_telecom

N_LAGS = 3


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(n_chains=25, n_testbeds=6, n_focus=3, include_rare_testbed=False, seed=11)
    )

    # Blind the focus chains: no execution of theirs enters training.
    split = blind_chains(dataset, dataset.focus_indices)
    print(f"blinded {len(split.held_out)} chains; "
          f"training pool shrank to {len(split.training)} executions")

    vocabulary = EnvironmentVocabulary().fit([env for env, _, _ in split.training])
    model = train_env2vec_telecom(split.training, n_lags=N_LAGS, fast=True)

    detector = ContextualAnomalyDetector(gamma=2.0)
    for execution in split.held_out:
        env = execution.environment
        known = vocabulary.is_known(env)
        coverage = field_coverage(env, [e for e, _, _ in split.training])
        print(f"\nunseen environment {env.as_tuple()}")
        print(
            "  field coverage in training: "
            + ", ".join(f"{f}={coverage[f]} execs ({'known' if known[f] else 'UNKNOWN'})"
                        for f in ("testbed", "sut", "testcase", "build"))
        )
        print(f"  composable from known embeddings: {composable(env, vocabulary)}")

        # Self-calibrated detection: gamma applied to the error distribution
        # of the execution itself (no history exists for this environment).
        X, history, y = build_windows(execution.features, execution.cpu, N_LAGS)
        predicted = model.predict([env] * len(y), X, history)
        report = detector.detect_self_calibrated(predicted, y)
        truth = execution.anomaly_mask()[N_LAGS:]
        hits = sum(1 for a in report.alarms if truth[a.start : a.end].any())
        print(
            f"  prediction MAE {np.abs(predicted - y).mean():.2f}% CPU | "
            f"{report.n_alarms} alarms, {hits} overlap the "
            f"{len(execution.impactful_faults)} real problems"
        )

    print(
        "\n(Ridge/Ridge_ts cannot run here at all: with the history blinded "
        "there is no per-chain data to train them — the paper's Table 6 N/A.)"
    )


if __name__ == "__main__":
    main()
