#!/usr/bin/env python3
"""Operating Env2Vec responsibly: error calibration + drift detection.

Two production concerns the paper raises but leaves open:

1. §3.2 — the anomaly detector assumes Gaussian prediction errors. This
   script *measures* that assumption on the trained model's errors
   (normality test + empirical vs predicted tail mass) and compares the
   Gaussian γ·σ rule with the distribution-free quantile alternative.
2. Model aging — daily retraining is a schedule, not a guarantee. A
   Page-Hinkley drift monitor watches the serving model's error level on
   clean executions and recommends retraining only when it actually
   drifts.

Run:  python examples/drift_and_calibration.py
"""

import numpy as np

from repro.core import (
    ContextualAnomalyDetector,
    GaussianErrorModel,
    QuantileErrorModel,
    calibration_report,
)
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import train_env2vec_telecom
from repro.workflow import DriftMonitor

N_LAGS = 3


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(n_chains=20, n_testbeds=8, n_focus=3, include_rare_testbed=False, seed=6)
    )
    model = train_env2vec_telecom(dataset, fast=True)

    # --- 1. Is the Gaussian assumption OK for this model/corpus? -----------
    errors = []
    for chain in dataset.chains:
        for execution in chain.history:
            X, history, y = build_windows(execution.features, execution.cpu, N_LAGS)
            predicted = model.predict([execution.environment] * len(y), X, history)
            errors.append(predicted - y)
    errors = np.concatenate(errors)
    report = calibration_report(errors)
    print(report.table())

    # Compare the two error models on one problematic build.
    chain = dataset.focus_chains[0]
    X, history, y = build_windows(chain.current.features, chain.current.cpu, N_LAGS)
    predicted = model.predict([chain.current.environment] * len(y), X, history)
    detector = ContextualAnomalyDetector(gamma=2.0)
    for name, error_model in (
        ("gaussian", GaussianErrorModel.fit(errors)),
        ("quantile", QuantileErrorModel.fit(errors)),
    ):
        result = detector.detect(predicted, y, error_model)
        truth = chain.current.anomaly_mask()[N_LAGS:]
        hits = sum(1 for a in result.alarms if truth[a.start : a.end].any())
        print(
            f"  {name:<9} error model: {result.n_alarms} alarms, "
            f"{hits} overlap the {len(chain.current.impactful_faults)} real problems"
        )

    # --- 2. When does the serving model *need* retraining? -----------------
    print("\nDrift watch over clean executions (Page-Hinkley on MAE):")
    monitor = DriftMonitor(delta=0.05, threshold=2.0, warmup=5)
    rng = np.random.default_rng(0)
    day = 0
    # Phase 1: the model serves the corpus it was trained for.
    for chain in dataset.chains[:12]:
        execution = chain.history[0]
        X, history, y = build_windows(execution.features, execution.cpu, N_LAGS)
        predicted = model.predict([execution.environment] * len(y), X, history)
        decision = monitor.observe(float(np.abs(predicted - y).mean()))
        day += 1
    print(f"  days 1-{day}: statistic {decision.statistic:.2f} — no drift")
    # Phase 2: simulate an infrastructure change doubling the error level.
    fired_on = None
    while fired_on is None and day < 60:
        day += 1
        drifted_mae = 2.0 * np.abs(errors).mean() + 0.1 * rng.standard_normal()
        decision = monitor.observe(float(abs(drifted_mae)))
        if decision.drifted:
            fired_on = day
    print(f"  day {fired_on}: drift detected (statistic crossed threshold) "
          f"-> retrain recommended")
    print(f"  total retrain recommendations: {monitor.retrain_recommendations}")


if __name__ == "__main__":
    main()
