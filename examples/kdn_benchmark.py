#!/usr/bin/env python3
"""VNF resource modelling on the KDN benchmark datasets (§4.1, Table 4).

Loads the three synthetic KDN datasets (Snort IDS, SDN switch, SDN
firewall — 86 traffic features per 20 s batch, Table 3 splits), trains a
compact method lineup, and prints a Table 4-style comparison: per-VNF
baselines vs the single Env2Vec model trained across all three VNFs.

Run:  python examples/kdn_benchmark.py
"""

from repro.eval import paired_t_test, run_kdn_comparison


def main() -> None:
    result = run_kdn_comparison(
        seed=0,
        n_nn_runs=2,
        fast=True,
        methods=("ridge", "ridge_ts", "rfnn", "rfnn_all", "env2vec"),
    )
    print(result.table4())
    print()
    for dataset in ("snort", "switch", "firewall"):
        best = result.best_method(dataset)
        env2vec = result.scores[dataset]["env2vec"]
        rfnn_all = result.scores[dataset]["rfnn_all"]
        print(
            f"{dataset:<9} best={best:<9} "
            f"env2vec MAE={env2vec.mae_mean:.2f} vs pooled-no-embeddings "
            f"MAE={rfnn_all.mae_mean:.2f} "
            f"({100 * (rfnn_all.mae_mean / env2vec.mae_mean - 1):+.0f}% worse without embeddings)"
        )

    # Statistical check on the embeddings effect (paired over runs).
    snort = result.scores["snort"]
    if len(snort["env2vec"].mae_runs) >= 2:
        test = paired_t_test(snort["env2vec"].mae_runs, snort["rfnn_all"].mae_runs)
        print(f"\npaired t-test env2vec vs rfnn_all on snort (per-run MAE): {test}")


if __name__ == "__main__":
    main()
