#!/usr/bin/env python3
"""The full Figure 2 testing workflow, end to end.

Walks through the paper's five workflow steps with the real substrates:

  (1) the metric collector replays test executions into the TSDB with EM
      labels and registers endpoints in the Prometheus service-discovery
      JSON;
  (2) the training pipeline masks flagged executions, trains the single
      Env2Vec model, and publishes the serialized artifact;
  (3) the prediction pipeline fetches the model, reads the running build,
      builds the Table 2 dataframe, and infers resource usage;
  (4) detected deviations become alarms in the (sqlite) alarm store, with
      the early-termination hook;
  (5) the prediction pipeline always fetches the latest published model.

Run:  python examples/testing_workflow.py
"""

import tempfile
from pathlib import Path

from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictionPipeline,
    ServiceDiscovery,
    TimeSeriesDB,
    TrainingPipeline,
    build_prediction_frame,
)


def main() -> None:
    dataset = generate_telecom(
        TelecomConfig(n_chains=12, n_testbeds=5, n_focus=2, include_rare_testbed=False, seed=7)
    )
    workdir = Path(tempfile.mkdtemp(prefix="env2vec-workflow-"))

    # ------------------------------------------------------------------
    # Step 1 — testbed data collection into the TSDB.
    # ------------------------------------------------------------------
    tsdb = TimeSeriesDB()
    registry = EMRegistry()
    discovery = ServiceDiscovery(workdir / "prometheus_sd.json")
    collector = MetricCollector(tsdb, registry, discovery=discovery, feature_names=FEATURE_NAMES)
    for chain in dataset.chains:
        for execution in chain.executions:
            collector.collect(execution)
    print(
        f"step 1: collected {tsdb.n_series():,} series / {tsdb.n_samples():,} samples "
        f"into the TSDB; {len(discovery)} service-discovery targets"
    )
    print(f"        discovery entry example: {discovery.targets()[0]}")

    # ------------------------------------------------------------------
    # Step 2 — daily model training (current builds held out), publish.
    # ------------------------------------------------------------------
    store = ModelStore(workdir / "models")
    trainer = TrainingPipeline(
        store, n_lags=3, model_params={"max_epochs": 40, "batch_size": 256}
    )
    result = trainer.train(dataset.history_training_series())
    print(
        f"step 2: trained on {result.n_examples:,} examples "
        f"({result.epochs_run} epochs); published model v{result.version.version} "
        f"({result.version.size_bytes / 1024:.0f} KiB)"
    )

    # ------------------------------------------------------------------
    # Steps 3-5 — monitor every chain's current build.
    # ------------------------------------------------------------------
    alarms = AlarmStore(workdir / "alarms.sqlite")
    pipeline = PredictionPipeline(store, alarms, gamma=3.0, termination_threshold=3)

    frame = build_prediction_frame(dataset.chains[0].current, n_lags=3, feature_names=FEATURE_NAMES)
    print(f"step 3: Table 2 dataframe for one execution: {frame.shape[0]} rows x "
          f"{frame.shape[1]} columns ({', '.join(frame.columns[:4])}, ...)")

    flagged = []
    for chain in dataset.chains:
        error_model = pipeline.calibrate(chain)
        run = pipeline.run(chain.current, error_model)
        if run.report.n_alarms:
            flagged.append((chain, run))

    print(f"step 4: {alarms.count()} alarms persisted across "
          f"{len(flagged)} flagged executions")
    for chain, run in flagged:
        records = alarms.fetch(environment=chain.current.environment)
        truth = chain.current.has_performance_problem
        terminated = " [early termination triggered]" if run.terminated_early else ""
        print(
            f"        {chain.key} build {chain.current.environment.build}: "
            f"{len(records)} alarm(s), ground truth problem={truth}{terminated}"
        )
        for record in records[:2]:
            print(f"          interval [{record.start_step}, {record.end_step}) "
                  f"peak {record.peak_deviation:.1f}% CPU")

    blob, version = store.fetch_latest()
    print(f"step 5: prediction pipeline served model v{version.version} "
          f"({len(blob) / 1024:.0f} KiB) for every run")

    focus_keys = {chain.key for chain in dataset.focus_chains}
    caught = sum(1 for chain, _ in flagged if chain.key in focus_keys)
    print(f"\nsummary: {caught}/{len(focus_keys)} problem builds flagged; "
          f"{sum(1 for c, _ in flagged if c.key not in focus_keys)} clean builds flagged")


if __name__ == "__main__":
    main()
